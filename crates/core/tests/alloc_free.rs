//! Proof that the fused kernel's steady state is allocation-free: once the
//! scratch buffers have grown to the workload's high-water mark and the
//! prefix cache is warm, a full `evaluate_all` sweep performs exactly ONE
//! heap allocation — the returned candidate vector — no matter how many
//! (core, P-state) convolutions it runs.
//!
//! The whole file is a single `#[test]` in its own integration binary so no
//! concurrent test pollutes the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ecds_cluster::PState;
use ecds_core::{candidates_bit_eq, CandidateEvaluator, ClassCandidate, EvaluatedCandidate};
use ecds_sim::{CoreState, DirtyCores, ExecutingTask, QueuedTask, Scenario, SystemView};
use ecds_workload::{Task, TaskId, TaskTypeId};

/// System allocator wrapper that counts every allocation call.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_evaluate_all_allocates_only_the_result_vector() {
    let scenario = Scenario::small_for_tests(23);
    let mut cores = vec![CoreState::new(); scenario.cluster().total_cores()];
    // Every core busy with a queue behind it: the heaviest steady-state
    // shape — every candidate runs a real prefix ⊛ exec convolution.
    for (i, core) in cores.iter_mut().enumerate() {
        core.start(ExecutingTask {
            task: TaskId(i),
            type_id: TaskTypeId(i % 3),
            pstate: PState::P1,
            start: 0.0,
            deadline: 5000.0,
        });
        for q in 0..2 {
            core.enqueue(QueuedTask {
                task: TaskId(100 + i * 2 + q),
                type_id: TaskTypeId((i + q + 1) % 3),
                pstate: PState::P2,
                deadline: 6000.0,
            });
        }
    }
    let view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 50.0, 1, 60);
    let task = Task {
        id: TaskId(50),
        type_id: TaskTypeId(0),
        arrival: 50.0,
        deadline: 3000.0,
        quantile: 0.5,
    };
    let evaluator = CandidateEvaluator::default();

    // Warm-up: first call populates the prefix cache, grows every scratch
    // buffer to this workload's high-water mark, and sizes the dedup class
    // storage; second call verifies the warm path works before we start
    // counting.
    let reference = evaluator.evaluate_all(&view, &task);
    let warm = evaluator.evaluate_all(&view, &task);
    assert!(candidates_bit_eq(&reference, &warm));

    let before = allocations();
    let measured = evaluator.evaluate_all(&view, &task);
    let during = allocations() - before;
    assert!(candidates_bit_eq(&measured, &reference));
    assert_eq!(
        during, 1,
        "steady-state evaluate_all must allocate exactly once (the result \
         vector); every candidate convolution must run in the scratch and \
         the class partition in its retained storage"
    );

    // The same sweep through the legacy pipeline — per-core, no fused
    // kernel — allocates per candidate; the contrast proves the counter
    // actually observes the kernel.
    let legacy = CandidateEvaluator::default()
        .without_fused_kernel()
        .without_candidate_dedup();
    let _ = legacy.evaluate_all(&view, &task);
    let before = allocations();
    let legacy_measured = legacy.evaluate_all(&view, &task);
    let legacy_during = allocations() - before;
    assert!(candidates_bit_eq(&legacy_measured, &reference));
    let candidates = reference.len() as u64;
    assert!(
        legacy_during > candidates,
        "legacy pipeline should allocate at least once per candidate \
         ({candidates}), counted {legacy_during}"
    );

    // --- Shard-index path: ZERO steady-state allocations. ---
    //
    // With an epoch-bump mailbox on the view, the evaluator maintains its
    // (node, prefix-identity) shard index incrementally, and a caller-owned
    // output buffer removes even the one allowed allocation above: a warm
    // `evaluate_all_into` and a warm `evaluate_indexed_into` must both
    // touch the allocator zero times.
    let dirty = DirtyCores::default();
    let sharded_view = SystemView::new(scenario.cluster(), scenario.table(), &cores, 50.0, 1, 60)
        .with_dirty(&dirty);
    let sharded = CandidateEvaluator::default();
    assert!(sharded.has_shard_index());

    let mut out: Vec<EvaluatedCandidate> = Vec::new();
    // Warm-up: first call full-rebuilds the shard and grows every buffer;
    // second call runs the incremental sweep and verifies the warm path.
    sharded.evaluate_all_into(&sharded_view, &task, &mut out);
    sharded.evaluate_all_into(&sharded_view, &task, &mut out);
    assert!(candidates_bit_eq(&out, &reference));

    let before = allocations();
    sharded.evaluate_all_into(&sharded_view, &task, &mut out);
    let during = allocations() - before;
    assert!(candidates_bit_eq(&out, &reference));
    assert_eq!(
        during, 0,
        "warm sharded evaluate_all_into with a caller-owned buffer must \
         not allocate: the sweep walks the mailbox/expiry heap in place \
         and estimates land in the reused class storage"
    );

    // The class-level API (what SQ/MECT/LL select from without
    // materializing cores × P-states) is equally allocation-free warm.
    let mut classes: Vec<ClassCandidate> = Vec::new();
    assert!(sharded.evaluate_indexed_into(&sharded_view, &task, &mut classes));
    let before = allocations();
    assert!(sharded.evaluate_indexed_into(&sharded_view, &task, &mut classes));
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "warm evaluate_indexed_into must not allocate: class candidates \
         land in the caller-owned buffer"
    );
    // The classes cover every core exactly once and carry the reference
    // estimates bit-for-bit.
    let total: usize = classes.iter().map(|c| c.members).sum();
    assert_eq!(total, cores.len());
    for class in &classes {
        for (pi, est) in class.ests.iter().enumerate() {
            assert!(est.bit_eq(&reference[class.min_core * 5 + pi].est));
        }
    }
}
