//! Task priorities (paper future work; compare \[KiS08\], which completes
//! "as many high-priority tasks as possible, followed by as many
//! low-priority tasks as possible").
//!
//! Tasks get a synthetic priority class (the paper's workload has none);
//! priority-awareness is added the same way the paper adds energy- and
//! robustness-awareness — as a *filter*: high-priority tasks may spend a
//! larger multiple of the fair energy share than low-priority ones, so
//! under scarcity the scheduler starves low-priority tasks first.

use ecds_core::{EnergyFilter, Filter, FilterCtx};
use ecds_pmf::{SeedDerive, Stream};
use ecds_sim::{SystemView, TrialResult};
use ecds_workload::Task;
use rand::Rng;

/// A task's priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityClass {
    /// Must-complete work.
    High,
    /// Best-effort work.
    Low,
}

/// Deterministically assigns a priority class to every task in a window:
/// each task is `High` with probability `high_fraction`, drawn from the
/// [`Stream::Extension`] substream of `seeds` for trial `trial`.
pub fn assign_priorities(
    window: usize,
    high_fraction: f64,
    seeds: &SeedDerive,
    trial: u64,
) -> Vec<PriorityClass> {
    assert!(
        (0.0..=1.0).contains(&high_fraction),
        "high_fraction must be a probability"
    );
    let mut rng = seeds.rng(Stream::Extension, trial, 0);
    (0..window)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < high_fraction {
                PriorityClass::High
            } else {
                PriorityClass::Low
            }
        })
        .collect()
}

/// A priority-differentiated energy filter: wraps the paper's
/// [`EnergyFilter`], scaling its fair share by a per-class factor.
///
/// With `high_factor > 1 > low_factor`, high-priority tasks keep access to
/// fast P-states deep into budget scarcity while low-priority tasks are
/// pushed to frugal assignments (or discarded) first.
#[derive(Debug, Clone)]
pub struct PriorityEnergyFilter {
    inner: EnergyFilter,
    priorities: Vec<PriorityClass>,
    high_factor: f64,
    low_factor: f64,
}

impl PriorityEnergyFilter {
    /// Creates the filter. `priorities` must cover the whole window
    /// (indexed by task id).
    pub fn new(priorities: Vec<PriorityClass>, high_factor: f64, low_factor: f64) -> Self {
        assert!(
            high_factor > 0.0 && low_factor > 0.0,
            "factors must be positive"
        );
        assert!(
            high_factor >= low_factor,
            "high-priority tasks should not get less than low-priority ones"
        );
        Self {
            inner: EnergyFilter::paper(),
            priorities,
            high_factor,
            low_factor,
        }
    }

    fn factor(&self, task: &Task) -> f64 {
        match self.priorities.get(task.id.0) {
            Some(PriorityClass::High) | None => self.high_factor,
            Some(PriorityClass::Low) => self.low_factor,
        }
    }
}

impl Filter for PriorityEnergyFilter {
    fn name(&self) -> &'static str {
        "prio-en"
    }

    fn retain(
        &self,
        task: &Task,
        view: &SystemView<'_>,
        ctx: &FilterCtx,
        candidates: &mut Vec<ecds_core::EvaluatedCandidate>,
    ) {
        let fair = self.inner.fair_share(view, ctx) * self.factor(task);
        candidates.retain(|c| c.est.eec <= fair);
    }
}

/// Per-class outcome counts for a trial run with priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityReport {
    /// High-priority tasks in the window.
    pub high_total: usize,
    /// High-priority tasks completed on time within energy.
    pub high_completed: usize,
    /// Low-priority tasks in the window.
    pub low_total: usize,
    /// Low-priority tasks completed on time within energy.
    pub low_completed: usize,
}

impl PriorityReport {
    /// Tallies a trial result against a priority table.
    pub fn from_result(result: &TrialResult, priorities: &[PriorityClass]) -> Self {
        assert_eq!(
            result.window(),
            priorities.len(),
            "priority table must cover the window"
        );
        let mut report = Self {
            high_total: 0,
            high_completed: 0,
            low_total: 0,
            low_completed: 0,
        };
        for (outcome, class) in result.outcomes().iter().zip(priorities) {
            let counted = outcome.counted(result.exhausted_at());
            match class {
                PriorityClass::High => {
                    report.high_total += 1;
                    report.high_completed += usize::from(counted);
                }
                PriorityClass::Low => {
                    report.low_total += 1;
                    report.low_completed += usize::from(counted);
                }
            }
        }
        report
    }

    /// Completion rate of high-priority tasks.
    pub fn high_rate(&self) -> f64 {
        if self.high_total == 0 {
            1.0
        } else {
            self.high_completed as f64 / self.high_total as f64
        }
    }

    /// Completion rate of low-priority tasks.
    pub fn low_rate(&self) -> f64 {
        if self.low_total == 0 {
            1.0
        } else {
            self.low_completed as f64 / self.low_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_core::{LightestLoad, RobustnessFilter, Scheduler};
    use ecds_pmf::ReductionPolicy;
    use ecds_sim::{Scenario, Simulation};

    #[test]
    fn assignment_is_deterministic_and_proportional() {
        let seeds = SeedDerive::new(5);
        let a = assign_priorities(1000, 0.3, &seeds, 0);
        let b = assign_priorities(1000, 0.3, &seeds, 0);
        assert_eq!(a, b);
        let high = a.iter().filter(|c| **c == PriorityClass::High).count();
        assert!((200..400).contains(&high), "high count {high}");
        let c = assign_priorities(1000, 0.3, &seeds, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn extreme_fractions() {
        let seeds = SeedDerive::new(5);
        assert!(assign_priorities(100, 0.0, &seeds, 0)
            .iter()
            .all(|c| *c == PriorityClass::Low));
        assert!(assign_priorities(100, 1.0, &seeds, 0)
            .iter()
            .all(|c| *c == PriorityClass::High));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_fraction_rejected() {
        let _ = assign_priorities(10, 1.5, &SeedDerive::new(0), 0);
    }

    #[test]
    #[should_panic(expected = "high-priority tasks should not get less")]
    fn inverted_factors_rejected() {
        let _ = PriorityEnergyFilter::new(vec![], 0.5, 1.5);
    }

    #[test]
    fn scarcity_favors_high_priority() {
        // Starve the budget so the priority differentiation matters, then
        // check high-priority tasks complete at a higher rate.
        let scenario = Scenario::small_for_tests(42).with_budget_factor(0.4);
        let trace = scenario.trace(0);
        let priorities = assign_priorities(trace.len(), 0.3, scenario.seeds(), 0);
        let budget = scenario.energy_budget().unwrap();
        let mut sched = Scheduler::new(
            Box::new(LightestLoad),
            vec![
                Box::new(PriorityEnergyFilter::new(priorities.clone(), 1.5, 0.5)),
                Box::new(RobustnessFilter::paper()),
            ],
            budget,
            ReductionPolicy::default(),
        );
        let result = Simulation::new(&scenario, &trace).run(&mut sched);
        let report = PriorityReport::from_result(&result, &priorities);
        assert_eq!(report.high_total + report.low_total, trace.len());
        // The differentiated filter must not leave high-priority tasks
        // worse off than low-priority ones.
        assert!(
            report.high_rate() >= report.low_rate(),
            "high {:.2} vs low {:.2}",
            report.high_rate(),
            report.low_rate()
        );
    }

    #[test]
    fn report_rates_degenerate_gracefully() {
        let r = PriorityReport {
            high_total: 0,
            high_completed: 0,
            low_total: 10,
            low_completed: 5,
        };
        assert_eq!(r.high_rate(), 1.0);
        assert_eq!(r.low_rate(), 0.5);
    }
}
