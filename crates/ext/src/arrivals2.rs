//! Arrival-pattern variety (paper future work: "include a variety of
//! arrival rates and patterns, to better understand how the relative
//! performance of the heuristics changes under varying conditions").
//!
//! All generators return [`BurstPattern`]s (piecewise-constant-rate Poisson
//! processes), so they plug straight into [`ecds_workload::WorkloadConfig`].

use ecds_workload::{ArrivalPhase, BurstPattern};

/// A sinusoidally-varying arrival rate, approximated by `phases`
/// piecewise-constant segments:
/// `rate(x) = base_rate · (1 + amplitude · sin(2π · periods · x))` where
/// `x` sweeps 0→1 over the window. Tasks are split evenly across phases.
pub fn sinusoidal(
    count: usize,
    base_rate: f64,
    amplitude: f64,
    periods: f64,
    phases: usize,
) -> BurstPattern {
    assert!(base_rate > 0.0, "base rate must be positive");
    assert!(
        (0.0..1.0).contains(&amplitude),
        "amplitude must be in [0, 1) so rates stay positive"
    );
    assert!(periods > 0.0, "periods must be positive");
    assert!(
        phases >= 1 && count >= phases,
        "need at least one task per phase"
    );
    let per_phase = count / phases;
    let mut remainder = count % phases;
    let mut out = Vec::with_capacity(phases);
    for i in 0..phases {
        let x = (i as f64 + 0.5) / phases as f64;
        let rate = base_rate * (1.0 + amplitude * (2.0 * std::f64::consts::PI * periods * x).sin());
        let mut n = per_phase;
        if remainder > 0 {
            n += 1;
            remainder -= 1;
        }
        out.push(ArrivalPhase::new(n, rate));
    }
    BurstPattern::new(out)
}

/// `bursts` bursts of `burst_len` tasks at `fast_rate`, separated by lulls
/// of `lull_len` tasks at `slow_rate` (generalizing the paper's
/// two-burst/one-lull pattern).
pub fn multi_burst(
    bursts: usize,
    burst_len: usize,
    fast_rate: f64,
    lull_len: usize,
    slow_rate: f64,
) -> BurstPattern {
    assert!(bursts >= 1, "need at least one burst");
    let mut phases = Vec::with_capacity(2 * bursts - 1);
    for i in 0..bursts {
        phases.push(ArrivalPhase::new(burst_len, fast_rate));
        if i + 1 < bursts {
            phases.push(ArrivalPhase::new(lull_len, slow_rate));
        }
    }
    BurstPattern::new(phases)
}

/// A linear ramp from `start_rate` to `end_rate` over `phases` segments —
/// models gradually increasing (or draining) load.
pub fn ramp(count: usize, start_rate: f64, end_rate: f64, phases: usize) -> BurstPattern {
    assert!(start_rate > 0.0 && end_rate > 0.0, "rates must be positive");
    assert!(
        phases >= 1 && count >= phases,
        "need at least one task per phase"
    );
    let per_phase = count / phases;
    let mut remainder = count % phases;
    let mut out = Vec::with_capacity(phases);
    for i in 0..phases {
        let x = if phases == 1 {
            0.5
        } else {
            i as f64 / (phases - 1) as f64
        };
        let rate = start_rate + (end_rate - start_rate) * x;
        let mut n = per_phase;
        if remainder > 0 {
            n += 1;
            remainder -= 1;
        }
        out.push(ArrivalPhase::new(n, rate));
    }
    BurstPattern::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_workload::arrivals::{LAMBDA_EQ, LAMBDA_FAST, LAMBDA_SLOW};

    #[test]
    fn sinusoidal_preserves_count_and_varies_rate() {
        let p = sinusoidal(1000, LAMBDA_EQ, 0.5, 2.0, 20);
        assert_eq!(p.total_tasks(), 1000);
        let rates: Vec<f64> = p.phases().iter().map(|ph| ph.rate).collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min * 1.5, "rates should oscillate: {min}..{max}");
        assert!(min > 0.0);
    }

    #[test]
    fn sinusoidal_amplitude_zero_is_constant() {
        let p = sinusoidal(100, 0.05, 0.0, 1.0, 4);
        for ph in p.phases() {
            assert!((ph.rate - 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_burst_alternates_phases() {
        let p = multi_burst(3, 100, LAMBDA_FAST, 200, LAMBDA_SLOW);
        assert_eq!(p.phases().len(), 5);
        assert_eq!(p.total_tasks(), 3 * 100 + 2 * 200);
        assert_eq!(p.phases()[0].rate, LAMBDA_FAST);
        assert_eq!(p.phases()[1].rate, LAMBDA_SLOW);
        assert_eq!(p.phases()[2].rate, LAMBDA_FAST);
    }

    #[test]
    fn paper_pattern_is_a_multi_burst_special_case() {
        let p = multi_burst(2, 200, LAMBDA_FAST, 600, LAMBDA_SLOW);
        let paper = BurstPattern::paper();
        assert_eq!(p.phases().len(), paper.phases().len());
        for (a, b) in p.phases().iter().zip(paper.phases()) {
            assert_eq!(a.count, b.count);
            assert_eq!(a.rate, b.rate);
        }
    }

    #[test]
    fn ramp_is_monotone() {
        let p = ramp(500, 0.01, 0.2, 10);
        assert_eq!(p.total_tasks(), 500);
        let rates: Vec<f64> = p.phases().iter().map(|ph| ph.rate).collect();
        assert!(rates.windows(2).all(|w| w[0] <= w[1]));
        assert!((rates[0] - 0.01).abs() < 1e-12);
        assert!((rates[9] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ramp_single_phase_uses_midpoint() {
        let p = ramp(10, 0.1, 0.3, 1);
        assert!((p.phases()[0].rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn uneven_counts_distribute_remainder() {
        let p = sinusoidal(103, 0.05, 0.3, 1.0, 10);
        assert_eq!(p.total_tasks(), 103);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn full_amplitude_rejected() {
        let _ = sinusoidal(100, 0.05, 1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one burst")]
    fn zero_bursts_rejected() {
        let _ = multi_burst(0, 10, 0.1, 10, 0.01);
    }
}
