//! Extensions from the paper's future-work section (Sec. VIII).
//!
//! The paper closes with a list of model extensions; this crate implements
//! them against the same substrates so the ablation harness can measure
//! their effect:
//!
//! * **Task priorities** ([`priority`]) — "we intend to expand our model to
//!   consider tasks with varying priorities": a deterministic synthetic
//!   priority assignment, a priority-differentiated energy filter (high
//!   priority gets a larger fair share), and weighted miss metrics.
//! * **Cancellation** ([`cancel`]) — "a system with the ability to cancel
//!   and/or reschedule tasks": analysis helpers for the simulator's
//!   `cancel_overdue` mode (drop tasks that already missed instead of
//!   running them).
//! * **Batch-mode rescheduling** ([`batch`]) — the "reschedule" half of the
//!   same future-work item, after the paper's \[SmA10\] lineage: tasks wait
//!   in a central bag and are committed only when a core frees up, so every
//!   mapping event re-decides over everything not yet started.
//! * **Stochastic power** ([`power_pmf`]) — "use full probability
//!   distributions to represent power consumption, instead of ... a
//!   constant representing an average value": per-(node, P-state) power
//!   distributions and the induced uncertainty on total trial energy.
//! * **Arrival-pattern variety** ([`arrivals2`]) — "include a variety of
//!   arrival rates and patterns": sinusoidal (piecewise-constant
//!   approximation), multi-burst, and ramp patterns compatible with the
//!   workload generator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals2;
pub mod batch;
pub mod cancel;
pub mod power_pmf;
pub mod priority;

pub use arrivals2::{multi_burst, ramp, sinusoidal};
pub use batch::{
    run_batch, BatchDiscipline, BatchEdf, BatchMaxRho, BatchPolicy, BatchView, Dispatch,
};
pub use cancel::CancellationReport;
pub use power_pmf::{EnergyUncertainty, StochasticPowerModel};
pub use priority::{assign_priorities, PriorityClass, PriorityEnergyFilter, PriorityReport};
