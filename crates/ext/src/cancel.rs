//! Cancellation analysis (paper future work: "a system with the ability to
//! cancel and/or reschedule tasks").
//!
//! The mechanism lives in the simulator
//! ([`ecds_sim::SimConfig::cancel_overdue`]); this module provides the
//! paired-comparison report: run the same trace with and without
//! cancellation and quantify the saved energy and the change in misses.

use ecds_sim::{Mapper, Scenario, Simulation, TrialResult};
use ecds_workload::WorkloadTrace;

/// Outcome of a with/without-cancellation paired run.
#[derive(Debug, Clone)]
pub struct CancellationReport {
    /// Result with the paper-faithful run-to-completion semantics.
    pub baseline: TrialResult,
    /// Result with overdue-task cancellation enabled.
    pub cancelling: TrialResult,
}

impl CancellationReport {
    /// Runs the paired comparison: the same scenario, trace, and freshly
    /// built mappers, once with `cancel_overdue` off and once on.
    ///
    /// `build_mapper` is invoked twice so each run gets an identically
    /// seeded scheduler (stateful mappers would otherwise leak ledger state
    /// between runs).
    pub fn run<F>(scenario: &Scenario, trace: &WorkloadTrace, mut build_mapper: F) -> Self
    where
        F: FnMut() -> Box<dyn Mapper>,
    {
        let mut cancelling_cfg = *scenario.sim_config();
        cancelling_cfg.cancel_overdue = true;
        let cancelling_scenario = scenario.with_sim_config(cancelling_cfg);

        let mut base_mapper = build_mapper();
        let baseline = Simulation::new(scenario, trace).run(base_mapper.as_mut());
        let mut cancel_mapper = build_mapper();
        let cancelling = Simulation::new(&cancelling_scenario, trace).run(cancel_mapper.as_mut());
        Self {
            baseline,
            cancelling,
        }
    }

    /// Energy saved by cancellation (positive when cancelling helped).
    pub fn energy_saved(&self) -> f64 {
        self.baseline.total_energy() - self.cancelling.total_energy()
    }

    /// Change in missed deadlines (positive when cancelling reduced
    /// misses).
    pub fn misses_avoided(&self) -> i64 {
        self.baseline.missed() as i64 - self.cancelling.missed() as i64
    }

    /// Tasks the cancelling run actually dropped.
    pub fn tasks_cancelled(&self) -> usize {
        self.cancelling.cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_core::{build_scheduler, FilterVariant, HeuristicKind};

    fn report(budget_factor: f64) -> CancellationReport {
        let scenario = Scenario::small_for_tests(42).with_budget_factor(budget_factor);
        let trace = scenario.trace(0);
        CancellationReport::run(&scenario, &trace, || {
            build_scheduler(HeuristicKind::Mect, FilterVariant::None, &scenario, 0)
        })
    }

    #[test]
    fn cancellation_never_runs_overdue_tasks() {
        let r = report(1.0);
        for outcome in r.cancelling.outcomes() {
            if outcome.cancelled {
                assert!(outcome.completion.is_none());
                assert!(outcome.assignment.is_some());
            }
            if let (Some(start), false) = (outcome.start, outcome.cancelled) {
                // Every task that ran started at or before its deadline.
                assert!(start <= outcome.deadline + 1e-9);
            }
        }
    }

    #[test]
    fn cancellation_saves_energy_when_tasks_are_dropped() {
        // A starved system builds long queues; many queued tasks expire.
        let r = report(0.3);
        if r.tasks_cancelled() > 0 {
            assert!(r.energy_saved() > 0.0);
        }
        // A cancelled task was missed in the baseline too (it started past
        // its deadline there), so cancellation cannot increase misses.
        assert!(r.misses_avoided() >= 0);
    }

    #[test]
    fn paper_faithful_run_cancels_nothing() {
        let r = report(1.0);
        assert_eq!(r.baseline.cancelled(), 0);
    }

    #[test]
    fn reports_are_deterministic() {
        let a = report(0.5);
        let b = report(0.5);
        assert_eq!(a.baseline.missed(), b.baseline.missed());
        assert_eq!(a.cancelling.missed(), b.cancelling.missed());
        assert_eq!(a.tasks_cancelled(), b.tasks_cancelled());
    }
}
