//! Batch-mode mapping (paper future work: "a system with the ability to
//! cancel and/or **reschedule** tasks"; compare the batch-mode predecessor
//! \[SmA10\] the paper builds its robustness model on).
//!
//! The paper's resource manager commits a task to a core *and a position in
//! that core's FIFO queue* the instant it arrives. Batch mode relaxes this:
//! arriving tasks wait in a central pending bag and are only committed when
//! a core is actually free, so every mapping event re-decides over the full
//! bag — effectively rescheduling everything that has not started yet.
//! Cores still run one task to completion and switch P-states only when
//! idle, so the physical model is unchanged; only the commitment discipline
//! differs.
//!
//! There is no separate batch engine: [`BatchDiscipline`] plugs a
//! [`BatchPolicy`] into the unified `ecds_sim` event core
//! ([`ecds_sim::Simulation::run_with`]), inheriting its deterministic event
//! ordering (completions before arrivals at equal times, then insertion
//! order), Eq. 1–2 energy accounting, exhaustion cutoff, telemetry, and the
//! `cancel_overdue` extension (overdue pending tasks are dropped from the
//! bag instead of dispatched). [`run_batch`] is a thin adapter over that
//! engine.

use ecds_cluster::{Cluster, PState};
use ecds_persist::{DecodeError, Decoder, Encoder};
use ecds_pmf::{truncate::truncate_below_or_floor, Pmf, Time};
use ecds_sim::{Discipline, EngineCtx, Scenario, Simulation, TrialResult};
use ecds_workload::{ExecTable, Task, TaskId, WorkloadTrace};

/// A decision made by a batch policy: start pending task `task_index` (an
/// index into the pending bag it was shown) on `core` in `pstate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Index into the pending slice passed to the policy.
    pub task_index: usize,
    /// Flat core index (must be idle).
    pub core: usize,
    /// Chosen P-state.
    pub pstate: PState,
}

/// State handed to a batch policy at each mapping event.
#[derive(Debug)]
pub struct BatchView<'a> {
    /// The cluster.
    pub cluster: &'a Cluster,
    /// The execution-time table.
    pub table: &'a ExecTable,
    /// Current time.
    pub now: Time,
    /// Flat indices of idle cores.
    pub idle_cores: &'a [usize],
    /// Remaining energy ledger (budget minus EEC of started tasks).
    pub remaining_energy: f64,
}

/// A batch-mode mapping policy: given the pending bag and the set of idle
/// cores, choose which tasks to start where. Every returned dispatch must
/// reference a distinct pending task and a distinct idle core.
pub trait BatchPolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides dispatches for this event.
    fn dispatch(&mut self, pending: &[Task], view: &BatchView<'_>) -> Vec<Dispatch>;
}

/// Greedy maximum-robustness batch policy, after \[SmA10\]'s two-phase
/// greedy: repeatedly pick the (pending task, idle core, P-state) triple
/// with the best score until cores or tasks run out. The score prefers the
/// highest on-time probability ρ, breaking near-ties toward lower expected
/// energy (ρ is compared at a small tolerance so "certain either way"
/// choices go to the frugal option).
#[derive(Debug, Clone, Copy)]
pub struct BatchMaxRho {
    rho_tolerance: f64,
}

impl BatchMaxRho {
    /// Creates the policy with a ρ comparison tolerance (default 0.02).
    /// Dispatch targets are always idle cores, so completion pmfs need no
    /// convolution (hence no reduction policy parameter).
    pub fn new(rho_tolerance: f64) -> Self {
        assert!((0.0..1.0).contains(&rho_tolerance), "tolerance in [0,1)");
        Self { rho_tolerance }
    }
}

impl Default for BatchMaxRho {
    fn default() -> Self {
        Self::new(0.02)
    }
}

impl BatchPolicy for BatchMaxRho {
    fn name(&self) -> &'static str {
        "batch-max-rho"
    }

    fn dispatch(&mut self, pending: &[Task], view: &BatchView<'_>) -> Vec<Dispatch> {
        let mut free: Vec<usize> = view.idle_cores.to_vec();
        let mut unassigned: Vec<usize> = (0..pending.len()).collect();
        let mut out = Vec::new();
        while !free.is_empty() && !unassigned.is_empty() {
            // Best (task, core, pstate) by (rho desc, eec asc).
            let mut best: Option<(f64, f64, usize, usize, PState)> = None;
            for (u_idx, &t_idx) in unassigned.iter().enumerate() {
                let task = &pending[t_idx];
                for (f_idx, &core) in free.iter().enumerate() {
                    let node_idx = view.cluster.core(core).node;
                    let node = view.cluster.node(node_idx);
                    for pstate in PState::ALL {
                        let exec = view.table.pmf(task.type_id, node_idx, pstate);
                        // Idle core: completion = exec shifted to now.
                        let rho = exec.prob_le(task.deadline - view.now);
                        let eec = view.table.eet(task.type_id, node_idx, pstate)
                            * node.power.watts(pstate)
                            / node.efficiency;
                        let better = match best {
                            None => true,
                            Some((b_rho, b_eec, ..)) => {
                                rho > b_rho + self.rho_tolerance
                                    || ((rho - b_rho).abs() <= self.rho_tolerance && eec < b_eec)
                            }
                        };
                        if better {
                            best = Some((rho, eec, u_idx, f_idx, pstate));
                        }
                    }
                }
            }
            let (_, _, u_idx, f_idx, pstate) = best.expect("non-empty sets");
            let task_index = unassigned.swap_remove(u_idx);
            let core = free.swap_remove(f_idx);
            out.push(Dispatch {
                task_index,
                core,
                pstate,
            });
        }
        out
    }
}

/// Earliest-deadline-first batch policy: dispatch the most urgent pending
/// tasks first, each to the idle (core, P-state) minimizing its expected
/// completion time — a deterministic, simple batch baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchEdf;

impl BatchPolicy for BatchEdf {
    fn name(&self) -> &'static str {
        "batch-edf"
    }

    fn dispatch(&mut self, pending: &[Task], view: &BatchView<'_>) -> Vec<Dispatch> {
        let mut by_deadline: Vec<usize> = (0..pending.len()).collect();
        by_deadline.sort_by(|&a, &b| pending[a].deadline.total_cmp(&pending[b].deadline));
        let mut free: Vec<usize> = view.idle_cores.to_vec();
        let mut out = Vec::new();
        for task_index in by_deadline {
            if free.is_empty() {
                break;
            }
            let task = &pending[task_index];
            let mut best: Option<(f64, usize, PState)> = None;
            for (f_idx, &core) in free.iter().enumerate() {
                let node_idx = view.cluster.core(core).node;
                for pstate in PState::ALL {
                    let eet = view.table.eet(task.type_id, node_idx, pstate);
                    if best.map(|(b, ..)| eet < b).unwrap_or(true) {
                        best = Some((eet, f_idx, pstate));
                    }
                }
            }
            let (_, f_idx, pstate) = best.expect("free non-empty");
            let core = free.swap_remove(f_idx);
            out.push(Dispatch {
                task_index,
                core,
                pstate,
            });
        }
        out
    }
}

/// The batch commitment discipline for the unified engine: a central
/// pending bag, filled at arrivals and drained by the wrapped
/// [`BatchPolicy`] at every mapping event (i.e. after every engine event),
/// but only onto idle cores. Maintains the Sec. V-F style remaining-energy
/// ledger the policy sees in its [`BatchView`].
pub struct BatchDiscipline<'p> {
    policy: &'p mut dyn BatchPolicy,
    /// Task ids waiting to be committed, in bag order (the order the
    /// policy observes; starts are `swap_remove`d).
    pending: Vec<TaskId>,
    /// Budget minus the expected energy consumption of every dispatch.
    remaining: f64,
}

impl std::fmt::Debug for BatchDiscipline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchDiscipline")
            .field("policy", &self.policy.name())
            .field("pending", &self.pending)
            .field("remaining", &self.remaining)
            .finish()
    }
}

impl<'p> BatchDiscipline<'p> {
    /// Wraps a batch policy for [`ecds_sim::Simulation::run_with`].
    pub fn new(policy: &'p mut dyn BatchPolicy) -> Self {
        Self {
            policy,
            pending: Vec::new(),
            remaining: f64::INFINITY,
        }
    }

    /// The current remaining-energy ledger value.
    pub fn remaining_energy(&self) -> f64 {
        self.remaining
    }
}

impl Discipline for BatchDiscipline<'_> {
    fn on_trial_start(&mut self, ctx: &mut EngineCtx<'_>) {
        self.pending.clear();
        self.remaining = ctx.config().budget_or_infinite();
    }

    fn on_arrival(&mut self, ctx: &mut EngineCtx<'_>, task: TaskId) {
        self.pending.push(task);
        let depth = self.pending.len() as f64 / ctx.num_cores() as f64;
        ctx.sample_telemetry(depth);
    }

    fn on_completion(&mut self, ctx: &mut EngineCtx<'_>, core: usize, _task: TaskId) {
        let next = ctx.complete_core(core);
        debug_assert!(next.is_none(), "batch mode never fills core FIFOs");
        ctx.park_idle(core);
    }

    fn after_event(&mut self, ctx: &mut EngineCtx<'_>) {
        // Inherited extension: drop pending tasks that already missed their
        // deadlines instead of burning energy on them (the batch analogue
        // of the immediate engine's queued-task cancellation).
        if ctx.config().cancel_overdue {
            let now = ctx.now();
            let mut i = 0;
            while i < self.pending.len() {
                let task = ctx.task(self.pending[i]);
                if now > task.deadline {
                    ctx.mark_cancelled(task.id);
                    self.pending.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        // Mapping event: let the policy fill idle cores from the bag.
        let idle: Vec<usize> = (0..ctx.num_cores())
            .filter(|&c| ctx.core_states()[c].is_idle())
            .collect();
        if idle.is_empty() || self.pending.is_empty() {
            return;
        }
        let bag: Vec<Task> = self.pending.iter().map(|&id| *ctx.task(id)).collect();
        let view = BatchView {
            cluster: ctx.cluster(),
            table: ctx.table(),
            now: ctx.now(),
            idle_cores: &idle,
            remaining_energy: self.remaining,
        };
        let dispatches = self.policy.dispatch(&bag, &view);
        // Validate and apply.
        let mut used_tasks = vec![false; bag.len()];
        let mut used_cores = vec![false; ctx.num_cores()];
        let mut started: Vec<usize> = Vec::new();
        for d in dispatches {
            assert!(d.task_index < bag.len(), "dispatch of unknown task");
            assert!(!used_tasks[d.task_index], "task dispatched twice");
            assert!(idle.contains(&d.core), "dispatch to a busy core");
            assert!(!used_cores[d.core], "core dispatched twice");
            used_tasks[d.task_index] = true;
            used_cores[d.core] = true;
            let task = self.pending[d.task_index];
            let task_data = *ctx.task(task);
            let node_idx = ctx.cluster().core(d.core).node;
            let node = ctx.cluster().node(node_idx);
            ctx.record_assignment(task, d.core, d.pstate);
            self.remaining -= ctx.table().eet(task_data.type_id, node_idx, d.pstate)
                * node.power.watts(d.pstate)
                / node.efficiency;
            ctx.start_task(d.core, task, d.pstate);
            started.push(d.task_index);
        }
        // Remove started tasks from the bag (descending order keeps
        // indices valid).
        started.sort_unstable_by(|a, b| b.cmp(a));
        for idx in started {
            self.pending.swap_remove(idx);
        }
    }

    fn holds_unassigned_tasks(&self) -> bool {
        // Arrived-but-unassigned tasks sit in the pending bag and may still
        // be dispatched; the serving loop must not retire them.
        true
    }

    fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.pending.len() as u64);
        for id in &self.pending {
            enc.put_u64(id.0 as u64);
        }
        enc.put_f64(self.remaining);
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        let n = dec.u64()?;
        if n > dec.remaining() / 8 {
            return Err(DecodeError::Truncated);
        }
        self.pending.clear();
        for _ in 0..n {
            self.pending.push(TaskId(dec.u64()? as usize));
        }
        self.remaining = dec.f64()?;
        Ok(())
    }
}

/// Runs one trial in batch mode and reports a [`TrialResult`] comparable
/// with the immediate-mode engine's — a thin adapter wrapping `policy` in
/// a [`BatchDiscipline`] and handing it to the unified engine.
pub fn run_batch(
    scenario: &Scenario,
    trace: &WorkloadTrace,
    policy: &mut dyn BatchPolicy,
) -> TrialResult {
    Simulation::new(scenario, trace).run_with(&mut BatchDiscipline::new(policy))
}

/// The completion-time pmf of a batch-dispatched task (exposed for tests
/// and analyses): on an idle core this is simply the execution pmf shifted
/// to the dispatch time, truncated below `now` for consistency with the
/// immediate-mode machinery.
pub fn batch_completion_pmf(
    table: &ExecTable,
    task: &Task,
    node: usize,
    pstate: PState,
    now: Time,
) -> Pmf {
    truncate_below_or_floor(&table.pmf(task.type_id, node, pstate).shift(now), now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_core::{build_scheduler, FilterVariant, HeuristicKind};
    use ecds_sim::Simulation;

    fn scenario() -> Scenario {
        Scenario::small_for_tests(1353)
    }

    #[test]
    fn batch_run_accounts_for_every_task() {
        let s = scenario();
        let trace = s.trace(0);
        let r = run_batch(&s, &trace, &mut BatchMaxRho::default());
        assert_eq!(r.window(), trace.len());
        assert_eq!(r.missed() + r.completed(), r.window());
        // Batch mode never discards: tasks wait in the bag until a core
        // frees up.
        for o in r.outcomes() {
            assert!(o.assignment.is_some(), "task left unstarted");
            assert!(o.completion.is_some());
        }
    }

    #[test]
    fn batch_starts_tasks_only_on_idle_cores() {
        let s = scenario();
        let trace = s.trace(0);
        let r = run_batch(&s, &trace, &mut BatchEdf);
        // No two tasks on the same core may overlap in time.
        let mut per_core: std::collections::BTreeMap<usize, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for o in r.outcomes() {
            if let (Some((core, _)), Some(start), Some(end)) = (o.assignment, o.start, o.completion)
            {
                per_core.entry(core).or_default().push((start, end));
            }
        }
        for (core, mut spans) in per_core {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "core {core} overlapped");
            }
        }
    }

    #[test]
    fn batch_is_deterministic() {
        let s = scenario();
        let trace = s.trace(1);
        let a = run_batch(&s, &trace, &mut BatchMaxRho::default());
        let b = run_batch(&s, &trace, &mut BatchMaxRho::default());
        assert_eq!(a.outcomes(), b.outcomes());
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn batch_edf_starts_urgent_tasks_first() {
        let s = scenario();
        let trace = s.trace(0);
        let r = run_batch(&s, &trace, &mut BatchEdf);
        // Among tasks pending simultaneously, the earlier deadline must not
        // start strictly later than a much later one... global assertion is
        // subtle; check the policy directly instead.
        let idle = vec![0usize];
        let view = BatchView {
            cluster: s.cluster(),
            table: s.table(),
            now: 0.0,
            idle_cores: &idle,
            remaining_energy: f64::INFINITY,
        };
        let t0 = trace.tasks()[0];
        let mut urgent = t0;
        urgent.deadline = 10.0;
        let mut lax = t0;
        lax.deadline = 1e9;
        let d = BatchEdf.dispatch(&[lax, urgent], &view);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].task_index, 1, "EDF must pick the urgent task");
        let _ = r;
    }

    #[test]
    fn batch_rescheduling_competes_with_immediate_mode() {
        // Not asserting superiority (depends on the draw), but batch mode
        // must land in the same performance regime as the paper's best
        // immediate-mode configuration.
        let s = scenario();
        let trace = s.trace(0);
        let batch = run_batch(&s, &trace, &mut BatchMaxRho::default());
        let mut imm = build_scheduler(
            HeuristicKind::LightestLoad,
            FilterVariant::EnergyAndRobustness,
            &s,
            0,
        );
        let immediate = Simulation::new(&s, &trace).run(imm.as_mut());
        let window = trace.len() as isize;
        let gap = batch.missed() as isize - immediate.missed() as isize;
        assert!(
            gap.abs() <= window / 2,
            "batch {} vs immediate {}",
            batch.missed(),
            immediate.missed()
        );
    }

    #[test]
    fn completion_pmf_shifts_to_dispatch_time() {
        let s = scenario();
        let trace = s.trace(0);
        let task = trace.tasks()[0];
        let pmf = batch_completion_pmf(s.table(), &task, 0, PState::P1, 500.0);
        assert!(pmf.min_value() >= 500.0);
    }

    #[test]
    fn batch_inherits_cancel_overdue_from_the_engine() {
        let s = scenario();
        let cancelling = s.with_sim_config({
            let mut c = *s.sim_config();
            c.cancel_overdue = true;
            c
        });
        let trace = s.trace(0);
        let baseline = run_batch(&s, &trace, &mut BatchEdf);
        let r = run_batch(&cancelling, &trace, &mut BatchEdf);
        assert_eq!(baseline.cancelled(), 0, "default stays paper-faithful");
        for o in r.outcomes() {
            if o.cancelled {
                // Cancelled while pending: never assigned, never started.
                assert!(o.assignment.is_none());
                assert!(o.start.is_none());
                assert!(o.completion.is_none());
            } else if let Some(start) = o.start {
                // Everything that ran was dispatched by its deadline.
                assert!(start <= o.deadline + 1e-9);
            }
        }
    }

    #[test]
    fn batch_telemetry_tracks_bag_depth_and_power() {
        let s = scenario();
        let trace = s.trace(0);
        let r = run_batch(&s, &trace, &mut BatchMaxRho::default());
        let t = r.telemetry();
        // One sample per arrival, inherited from the unified engine.
        assert_eq!(t.queue_depth.len(), trace.len());
        assert_eq!(t.busy_cores.len(), trace.len());
        assert!(!t.power.is_empty());
        // Batch policies carry no mapper-side instrumentation.
        assert_eq!(t.mapper, ecds_sim::MapperStats::default());
    }
}
