//! Stochastic power consumption (paper future work: "use full probability
//! distributions to represent power consumption, instead of assuming that
//! power consumption is a constant representing an average value").
//!
//! Power draw in a P-state fluctuates with workload content. We model
//! `μ(i, π)` as a gamma-distributed random variable whose mean is the
//! deterministic CMOS value and whose coefficient of variation is a model
//! parameter. Because energy integrates power over many independent
//! segments, total-trial energy concentrates sharply around its mean
//! (CLT); [`EnergyUncertainty`] propagates segment-level variance to a
//! cluster-level standard deviation so users can judge how much the
//! scalar-power simplification actually costs.

use ecds_cluster::{Cluster, PState, NUM_PSTATES};
use ecds_pmf::Gamma;
use ecds_sim::EnergyAccountant;
use rand::Rng;

/// Per-(node, P-state) stochastic power model.
#[derive(Debug, Clone)]
pub struct StochasticPowerModel {
    /// `[node][pstate]` gamma laws; mean equals the deterministic model.
    laws: Vec<[Gamma; NUM_PSTATES]>,
    cv: f64,
}

impl StochasticPowerModel {
    /// Wraps `cluster`'s deterministic power profiles in gamma laws with
    /// coefficient of variation `cv`.
    pub fn new(cluster: &Cluster, cv: f64) -> Self {
        assert!(cv.is_finite() && cv > 0.0, "cv must be positive");
        let laws = cluster
            .nodes()
            .iter()
            .map(|node| {
                std::array::from_fn(|s| {
                    Gamma::from_mean_cv(node.power.watts(PState::from_index(s)), cv)
                })
            })
            .collect();
        Self { laws, cv }
    }

    /// The model's coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Expected power of `(node, state)` — identical to the deterministic
    /// model by construction.
    pub fn expected_watts(&self, node: usize, state: PState) -> f64 {
        self.laws[node][state.index()].mean()
    }

    /// Power variance of `(node, state)`.
    pub fn variance(&self, node: usize, state: PState) -> f64 {
        self.laws[node][state.index()].variance()
    }

    /// Draws one realized power value.
    pub fn sample_watts<R: Rng + ?Sized>(&self, node: usize, state: PState, rng: &mut R) -> f64 {
        self.laws[node][state.index()].sample(rng)
    }
}

/// Mean and standard deviation of a trial's total wall energy under a
/// stochastic power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyUncertainty {
    /// Expected total wall energy (matches the deterministic accountant).
    pub mean: f64,
    /// Standard deviation induced by power fluctuation (independent
    /// per-segment draws).
    pub std_dev: f64,
}

impl EnergyUncertainty {
    /// Propagates `model`'s per-segment power variance through a finalized
    /// accountant: each constant-power segment of duration `Δt` contributes
    /// `E[P]·Δt` to the mean and `Var[P]·Δt²` to the variance (segments
    /// independent), both divided by the node's supply efficiency.
    pub fn from_accountant(
        accountant: &EnergyAccountant,
        cluster: &Cluster,
        model: &StochasticPowerModel,
    ) -> Self {
        let mut mean = 0.0;
        let mut var = 0.0;
        for core_id in cluster.cores() {
            let node = cluster.node_of(*core_id);
            let log = accountant.log(core_id.flat);
            assert!(log.is_finalized(), "finalize the accountant first");
            // Reconstruct the segments the same way core_energy does.
            let entries = log.entries();
            let mut add_segment = |state: PState, dt: f64| {
                let eff = node.efficiency;
                mean += model.expected_watts(core_id.node, state) * dt / eff;
                var += model.variance(core_id.node, state) * dt * dt / (eff * eff);
            };
            for w in entries.windows(2) {
                add_segment(w[0].1, w[1].0 - w[0].0);
            }
            if let (Some(&(t_last, s_last)), Some(end)) = (entries.last(), log.end_time()) {
                add_segment(s_last, end - t_last);
            }
        }
        Self {
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Relative uncertainty `std_dev / mean` (0 when mean is 0).
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecds_cluster::{generate_cluster, ClusterGenConfig};
    use ecds_pmf::SeedDerive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster() -> Cluster {
        generate_cluster(&ClusterGenConfig::small_for_tests(), &SeedDerive::new(3))
    }

    #[test]
    fn expected_watts_match_deterministic_model() {
        let c = cluster();
        let m = StochasticPowerModel::new(&c, 0.1);
        for (n, node) in c.nodes().iter().enumerate() {
            for s in PState::ALL {
                assert!((m.expected_watts(n, s) - node.power.watts(s)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn samples_scatter_around_mean() {
        let c = cluster();
        let m = StochasticPowerModel::new(&c, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean_expected = m.expected_watts(0, PState::P0);
        let mean_sampled: f64 = (0..n)
            .map(|_| m.sample_watts(0, PState::P0, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean_sampled - mean_expected).abs() / mean_expected < 0.02);
    }

    #[test]
    fn uncertainty_mean_matches_deterministic_energy() {
        let c = cluster();
        let m = StochasticPowerModel::new(&c, 0.15);
        let mut acc = EnergyAccountant::new(&c, 0.0, PState::P4);
        acc.record(0, 5.0, PState::P0);
        acc.record(0, 9.0, PState::P2);
        acc.finalize(20.0);
        let unc = EnergyUncertainty::from_accountant(&acc, &c, &m);
        let det = acc.total_energy(&c);
        assert!(
            (unc.mean - det).abs() / det < 1e-9,
            "mean {} vs deterministic {det}",
            unc.mean
        );
        assert!(unc.std_dev > 0.0);
    }

    #[test]
    fn higher_cv_means_more_uncertainty() {
        let c = cluster();
        let mut acc = EnergyAccountant::new(&c, 0.0, PState::P4);
        acc.finalize(100.0);
        let lo = EnergyUncertainty::from_accountant(&acc, &c, &StochasticPowerModel::new(&c, 0.05));
        let hi = EnergyUncertainty::from_accountant(&acc, &c, &StochasticPowerModel::new(&c, 0.30));
        assert!(hi.std_dev > lo.std_dev);
        assert!((hi.mean - lo.mean).abs() < 1e-6);
    }

    #[test]
    fn relative_uncertainty_is_small_for_long_trials() {
        // CLT: one long segment has relative sd = cv (fully correlated
        // within the segment), but many independent segments average out.
        let c = cluster();
        let m = StochasticPowerModel::new(&c, 0.2);
        let mut acc = EnergyAccountant::new(&c, 0.0, PState::P4);
        // Many alternating segments on core 0.
        let mut t = 0.0;
        for i in 0..200 {
            t += 1.0;
            acc.record(0, t, if i % 2 == 0 { PState::P0 } else { PState::P3 });
        }
        acc.finalize(t + 1.0);
        let unc = EnergyUncertainty::from_accountant(&acc, &c, &m);
        assert!(unc.relative() < 0.2, "relative {}", unc.relative());
    }

    #[test]
    #[should_panic(expected = "cv must be positive")]
    fn zero_cv_rejected() {
        let _ = StochasticPowerModel::new(&cluster(), 0.0);
    }
}
