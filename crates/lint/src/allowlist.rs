//! The `lint.toml` allowlist: audited violations, each carrying the
//! rationale that justifies it.
//!
//! The file is an array of `[[allow]]` tables. Every entry must name the
//! rule, the exact workspace-relative file, a `pattern` substring that
//! must appear on the flagged source line, and a non-empty `reason` the
//! lint prints with the site; an optional bare-integer `line` pins the
//! entry to one source line. An entry that matches no current diagnostic
//! is **stale** and fails the run: allowlists must shrink with the code
//! they excuse, never outlive it. An entry that matches *more than one*
//! diagnostic is **ambiguous** and also fails the run: every audit
//! rationale must be anchored to exactly the site it audited, or a new
//! violation sharing the pattern would be silently excused by an old
//! reason (add `line = N` or a longer pattern to disambiguate).
//!
//! The parser is a deliberately small TOML subset (the workspace vendors
//! no `toml` crate): `[[allow]]` headers, `key = "value"` pairs with
//! basic-string escapes, `key = 'value'` literal strings, comments, and
//! blank lines. Anything else is a hard error — an allowlist that cannot
//! be parsed must not silently allow nothing (or everything).

use crate::diag::{Diagnostic, RuleId};

/// One audited, justified violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being excused.
    pub rule: RuleId,
    /// Workspace-relative file, forward slashes, exact match.
    pub file: String,
    /// Substring that must occur on the flagged source line.
    pub pattern: String,
    /// Optional 1-based source line pin, for disambiguating entries
    /// whose pattern matches several diagnostics in one file.
    pub line: Option<usize>,
    /// Why the site is sound. Printed with the diagnostic.
    pub reason: String,
    /// 1-based line in `lint.toml` where the entry starts (for errors).
    pub defined_at: usize,
}

impl AllowEntry {
    /// Whether this entry covers the diagnostic.
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule
            && self.file == d.file
            && self.line.is_none_or(|l| l == d.line)
            && d.snippet.contains(&self.pattern)
    }
}

/// What applying an allowlist found wrong with the allowlist itself.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Entries that matched no diagnostic (the code they excused is
    /// gone — delete them).
    pub stale: Vec<AllowEntry>,
    /// Entries that matched more than one diagnostic, with the match
    /// count (anchor them with `line = N` or a longer pattern).
    pub ambiguous: Vec<(AllowEntry, usize)>,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `lint.toml` text. Returns the first error with its line
    /// number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(usize, PartialEntry)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((at, partial)) = current.take() {
                    entries.push(partial.finish(at)?);
                }
                current = Some((lineno, PartialEntry::default()));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "lint.toml:{lineno}: unknown table `{line}` (only [[allow]] is supported)"
                ));
            }
            // `line = N` is the one bare-integer key.
            if let Some(rest) = line.strip_prefix("line") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    let value = value.split('#').next().unwrap_or("").trim();
                    let Some((_, partial)) = current.as_mut() else {
                        return Err(format!(
                            "lint.toml:{lineno}: `line` outside an [[allow]] entry"
                        ));
                    };
                    partial.line = Some(value.parse::<usize>().map_err(|_| {
                        format!("lint.toml:{lineno}: `line` must be a bare integer, got `{value}`")
                    })?);
                    continue;
                }
            }
            let Some((key, value)) = parse_key_value(line) else {
                return Err(format!(
                    "lint.toml:{lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let Some((_, partial)) = current.as_mut() else {
                return Err(format!(
                    "lint.toml:{lineno}: `{key}` outside an [[allow]] entry"
                ));
            };
            match key {
                "rule" => {
                    partial.rule =
                        Some(RuleId::parse(&value).ok_or_else(|| {
                            format!("lint.toml:{lineno}: unknown rule id `{value}`")
                        })?)
                }
                "file" => partial.file = Some(value),
                "pattern" => partial.pattern = Some(value),
                "reason" => partial.reason = Some(value),
                other => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some((at, partial)) = current.take() {
            entries.push(partial.finish(at)?);
        }
        Ok(Allowlist { entries })
    }

    /// Marks allowed diagnostics in place. Each entry must anchor to
    /// exactly one diagnostic: zero matches makes it stale, two or more
    /// make it ambiguous (and excuse nothing); both fail the run.
    pub fn apply(&self, diagnostics: &mut [Diagnostic]) -> ApplyOutcome {
        let mut outcome = ApplyOutcome::default();
        for e in &self.entries {
            let matched: Vec<usize> = diagnostics
                .iter()
                .enumerate()
                .filter(|(_, d)| e.matches(d))
                .map(|(i, _)| i)
                .collect();
            match matched.as_slice() {
                [] => outcome.stale.push(e.clone()),
                [one] => {
                    let d = &mut diagnostics[*one];
                    if d.allowed.is_none() {
                        d.allowed = Some(e.reason.clone());
                    }
                }
                many => outcome.ambiguous.push((e.clone(), many.len())),
            }
        }
        outcome
    }
}

#[derive(Debug, Default)]
struct PartialEntry {
    rule: Option<RuleId>,
    file: Option<String>,
    pattern: Option<String>,
    line: Option<usize>,
    reason: Option<String>,
}

impl PartialEntry {
    fn finish(self, at: usize) -> Result<AllowEntry, String> {
        let missing = |k: &str| format!("lint.toml:{at}: [[allow]] entry is missing `{k}`");
        let reason = self.reason.ok_or_else(|| missing("reason"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "lint.toml:{at}: [[allow]] entry has an empty `reason` — every excused \
                 violation must document why it is sound"
            ));
        }
        Ok(AllowEntry {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            file: self.file.ok_or_else(|| missing("file"))?,
            pattern: self.pattern.ok_or_else(|| missing("pattern"))?,
            line: self.line,
            reason,
            defined_at: at,
        })
    }
}

/// Parses `key = "value"` / `key = 'value'`, returning the unescaped
/// value. Trailing comments after the closing quote are ignored.
fn parse_key_value(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let mut chars = rest.chars();
    let quote = chars.next()?;
    match quote {
        '"' => {
            let mut value = String::new();
            loop {
                match chars.next()? {
                    '\\' => match chars.next()? {
                        'n' => value.push('\n'),
                        't' => value.push('\t'),
                        c => value.push(c),
                    },
                    '"' => break,
                    c => value.push(c),
                }
            }
            Some((key, value))
        }
        '\'' => {
            let mut value = String::new();
            loop {
                match chars.next()? {
                    '\'' => break,
                    c => value.push(c),
                }
            }
            Some((key, value))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: RuleId, file: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line: 1,
            column: 0,
            snippet: snippet.to_string(),
            message: String::new(),
            suggestion: String::new(),
            allowed: None,
        }
    }

    #[test]
    fn parses_entries_and_matches_diagnostics() {
        let toml = r#"
# audited sites
[[allow]]
rule = "R4-panic"
file = "crates/sim/src/event.rs"
pattern = 'expect("event times are finite")'
reason = "event times come from finite pmf support"
"#;
        let list = Allowlist::parse(toml).unwrap();
        assert_eq!(list.entries.len(), 1);
        let mut ds = vec![diag(
            RuleId::PanicDiscipline,
            "crates/sim/src/event.rs",
            r#".partial_cmp(&self.time).expect("event times are finite")"#,
        )];
        let outcome = list.apply(&mut ds);
        assert!(outcome.stale.is_empty());
        assert!(outcome.ambiguous.is_empty());
        assert!(ds[0].allowed.is_some());
    }

    #[test]
    fn unmatched_entries_are_reported_stale() {
        let toml = "[[allow]]\nrule = \"R4-panic\"\nfile = \"crates/x.rs\"\n\
                    pattern = \"gone()\"\nreason = \"was audited\"\n";
        let list = Allowlist::parse(toml).unwrap();
        let mut ds: Vec<Diagnostic> = Vec::new();
        let outcome = list.apply(&mut ds);
        assert_eq!(outcome.stale.len(), 1);
        assert_eq!(outcome.stale[0].pattern, "gone()");
    }

    #[test]
    fn wrong_rule_or_file_does_not_match() {
        let toml = "[[allow]]\nrule = \"R3-float\"\nfile = \"crates/a.rs\"\n\
                    pattern = \"x == 0.0\"\nreason = \"sentinel\"\n";
        let list = Allowlist::parse(toml).unwrap();
        let mut ds = vec![
            diag(RuleId::PanicDiscipline, "crates/a.rs", "x == 0.0"),
            diag(RuleId::FloatDiscipline, "crates/b.rs", "x == 0.0"),
        ];
        let outcome = list.apply(&mut ds);
        assert_eq!(outcome.stale.len(), 1);
        assert!(ds.iter().all(|d| d.allowed.is_none()));
    }

    #[test]
    fn an_entry_matching_two_diagnostics_is_ambiguous_and_excuses_neither() {
        let toml = "[[allow]]\nrule = \"R4-panic\"\nfile = \"crates/a.rs\"\n\
                    pattern = \"unwrap()\"\nreason = \"audited once\"\n";
        let list = Allowlist::parse(toml).unwrap();
        let mut ds = vec![
            diag(RuleId::PanicDiscipline, "crates/a.rs", "x.unwrap()"),
            diag(RuleId::PanicDiscipline, "crates/a.rs", "y.unwrap()"),
        ];
        let outcome = list.apply(&mut ds);
        assert_eq!(outcome.ambiguous.len(), 1);
        assert_eq!(outcome.ambiguous[0].1, 2);
        assert!(outcome.stale.is_empty());
        assert!(ds.iter().all(|d| d.allowed.is_none()));
    }

    #[test]
    fn a_line_pin_disambiguates_a_shared_pattern() {
        let toml = "[[allow]]\nrule = \"R4-panic\"\nfile = \"crates/a.rs\"\n\
                    pattern = \"unwrap()\"\nline = 9\nreason = \"the line-9 site is audited\"\n";
        let list = Allowlist::parse(toml).unwrap();
        assert_eq!(list.entries[0].line, Some(9));
        let mut ds = vec![
            diag(RuleId::PanicDiscipline, "crates/a.rs", "x.unwrap()"),
            diag(RuleId::PanicDiscipline, "crates/a.rs", "y.unwrap()"),
        ];
        ds[0].line = 4;
        ds[1].line = 9;
        let outcome = list.apply(&mut ds);
        assert!(outcome.ambiguous.is_empty(), "{:?}", outcome.ambiguous);
        assert!(outcome.stale.is_empty());
        assert!(ds[0].allowed.is_none());
        assert!(ds[1].allowed.is_some());
    }

    #[test]
    fn non_integer_line_values_are_rejected() {
        let toml = "[[allow]]\nrule = \"R4-panic\"\nfile = \"f\"\npattern = \"p\"\n\
                    line = \"9\"\nreason = \"r\"\n";
        assert!(Allowlist::parse(toml).unwrap_err().contains("bare integer"));
    }

    #[test]
    fn missing_or_empty_reason_is_rejected() {
        let no_reason = "[[allow]]\nrule = \"R4-panic\"\nfile = \"f\"\npattern = \"p\"\n";
        assert!(Allowlist::parse(no_reason).unwrap_err().contains("reason"));
        let empty =
            "[[allow]]\nrule = \"R4-panic\"\nfile = \"f\"\npattern = \"p\"\nreason = \"  \"\n";
        assert!(Allowlist::parse(empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn unknown_rules_keys_and_tables_are_rejected() {
        assert!(Allowlist::parse("[[allow]]\nrule = \"R9-x\"\n").is_err());
        assert!(Allowlist::parse("[[allow]]\nrle = \"R4-panic\"\n").is_err());
        assert!(Allowlist::parse("[settings]\n").is_err());
        assert!(Allowlist::parse("rule = \"R4-panic\"\n").is_err());
    }

    #[test]
    fn empty_and_comment_only_files_parse() {
        assert!(Allowlist::parse("").unwrap().entries.is_empty());
        assert!(Allowlist::parse("# nothing here\n\n")
            .unwrap()
            .entries
            .is_empty());
    }
}
