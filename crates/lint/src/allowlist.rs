//! The `lint.toml` allowlist: audited violations, each carrying the
//! rationale that justifies it.
//!
//! The file is an array of `[[allow]]` tables. Every entry must name the
//! rule, the exact workspace-relative file, a `pattern` substring that
//! must appear on the flagged source line, and a non-empty `reason` the
//! lint prints with the site. An entry that matches no current diagnostic
//! is **stale** and fails the run: allowlists must shrink with the code
//! they excuse, never outlive it.
//!
//! The parser is a deliberately small TOML subset (the workspace vendors
//! no `toml` crate): `[[allow]]` headers, `key = "value"` pairs with
//! basic-string escapes, `key = 'value'` literal strings, comments, and
//! blank lines. Anything else is a hard error — an allowlist that cannot
//! be parsed must not silently allow nothing (or everything).

use crate::diag::{Diagnostic, RuleId};

/// One audited, justified violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being excused.
    pub rule: RuleId,
    /// Workspace-relative file, forward slashes, exact match.
    pub file: String,
    /// Substring that must occur on the flagged source line.
    pub pattern: String,
    /// Why the site is sound. Printed with the diagnostic.
    pub reason: String,
    /// 1-based line in `lint.toml` where the entry starts (for errors).
    pub defined_at: usize,
}

impl AllowEntry {
    /// Whether this entry covers the diagnostic.
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule && self.file == d.file && d.snippet.contains(&self.pattern)
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `lint.toml` text. Returns the first error with its line
    /// number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(usize, PartialEntry)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((at, partial)) = current.take() {
                    entries.push(partial.finish(at)?);
                }
                current = Some((lineno, PartialEntry::default()));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "lint.toml:{lineno}: unknown table `{line}` (only [[allow]] is supported)"
                ));
            }
            let Some((key, value)) = parse_key_value(line) else {
                return Err(format!(
                    "lint.toml:{lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let Some((_, partial)) = current.as_mut() else {
                return Err(format!(
                    "lint.toml:{lineno}: `{key}` outside an [[allow]] entry"
                ));
            };
            match key {
                "rule" => {
                    partial.rule =
                        Some(RuleId::parse(&value).ok_or_else(|| {
                            format!("lint.toml:{lineno}: unknown rule id `{value}`")
                        })?)
                }
                "file" => partial.file = Some(value),
                "pattern" => partial.pattern = Some(value),
                "reason" => partial.reason = Some(value),
                other => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some((at, partial)) = current.take() {
            entries.push(partial.finish(at)?);
        }
        Ok(Allowlist { entries })
    }

    /// Marks allowed diagnostics in place and returns the entries that
    /// matched nothing (stale).
    pub fn apply(&self, diagnostics: &mut [Diagnostic]) -> Vec<AllowEntry> {
        let mut used = vec![false; self.entries.len()];
        for d in diagnostics.iter_mut() {
            for (i, e) in self.entries.iter().enumerate() {
                if e.matches(d) {
                    used[i] = true;
                    d.allowed = Some(e.reason.clone());
                    break;
                }
            }
        }
        self.entries
            .iter()
            .zip(used)
            .filter(|(_, u)| !u)
            .map(|(e, _)| e.clone())
            .collect()
    }
}

#[derive(Debug, Default)]
struct PartialEntry {
    rule: Option<RuleId>,
    file: Option<String>,
    pattern: Option<String>,
    reason: Option<String>,
}

impl PartialEntry {
    fn finish(self, at: usize) -> Result<AllowEntry, String> {
        let missing = |k: &str| format!("lint.toml:{at}: [[allow]] entry is missing `{k}`");
        let reason = self.reason.ok_or_else(|| missing("reason"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "lint.toml:{at}: [[allow]] entry has an empty `reason` — every excused \
                 violation must document why it is sound"
            ));
        }
        Ok(AllowEntry {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            file: self.file.ok_or_else(|| missing("file"))?,
            pattern: self.pattern.ok_or_else(|| missing("pattern"))?,
            reason,
            defined_at: at,
        })
    }
}

/// Parses `key = "value"` / `key = 'value'`, returning the unescaped
/// value. Trailing comments after the closing quote are ignored.
fn parse_key_value(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let mut chars = rest.chars();
    let quote = chars.next()?;
    match quote {
        '"' => {
            let mut value = String::new();
            loop {
                match chars.next()? {
                    '\\' => match chars.next()? {
                        'n' => value.push('\n'),
                        't' => value.push('\t'),
                        c => value.push(c),
                    },
                    '"' => break,
                    c => value.push(c),
                }
            }
            Some((key, value))
        }
        '\'' => {
            let mut value = String::new();
            loop {
                match chars.next()? {
                    '\'' => break,
                    c => value.push(c),
                }
            }
            Some((key, value))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: RuleId, file: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line: 1,
            column: 0,
            snippet: snippet.to_string(),
            message: String::new(),
            suggestion: String::new(),
            allowed: None,
        }
    }

    #[test]
    fn parses_entries_and_matches_diagnostics() {
        let toml = r#"
# audited sites
[[allow]]
rule = "R4-panic"
file = "crates/sim/src/event.rs"
pattern = 'expect("event times are finite")'
reason = "event times come from finite pmf support"
"#;
        let list = Allowlist::parse(toml).unwrap();
        assert_eq!(list.entries.len(), 1);
        let mut ds = vec![diag(
            RuleId::PanicDiscipline,
            "crates/sim/src/event.rs",
            r#".partial_cmp(&self.time).expect("event times are finite")"#,
        )];
        let stale = list.apply(&mut ds);
        assert!(stale.is_empty());
        assert!(ds[0].allowed.is_some());
    }

    #[test]
    fn unmatched_entries_are_reported_stale() {
        let toml = "[[allow]]\nrule = \"R4-panic\"\nfile = \"crates/x.rs\"\n\
                    pattern = \"gone()\"\nreason = \"was audited\"\n";
        let list = Allowlist::parse(toml).unwrap();
        let mut ds: Vec<Diagnostic> = Vec::new();
        let stale = list.apply(&mut ds);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].pattern, "gone()");
    }

    #[test]
    fn wrong_rule_or_file_does_not_match() {
        let toml = "[[allow]]\nrule = \"R3-float\"\nfile = \"crates/a.rs\"\n\
                    pattern = \"x == 0.0\"\nreason = \"sentinel\"\n";
        let list = Allowlist::parse(toml).unwrap();
        let mut ds = vec![
            diag(RuleId::PanicDiscipline, "crates/a.rs", "x == 0.0"),
            diag(RuleId::FloatDiscipline, "crates/b.rs", "x == 0.0"),
        ];
        let stale = list.apply(&mut ds);
        assert_eq!(stale.len(), 1);
        assert!(ds.iter().all(|d| d.allowed.is_none()));
    }

    #[test]
    fn missing_or_empty_reason_is_rejected() {
        let no_reason = "[[allow]]\nrule = \"R4-panic\"\nfile = \"f\"\npattern = \"p\"\n";
        assert!(Allowlist::parse(no_reason).unwrap_err().contains("reason"));
        let empty =
            "[[allow]]\nrule = \"R4-panic\"\nfile = \"f\"\npattern = \"p\"\nreason = \"  \"\n";
        assert!(Allowlist::parse(empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn unknown_rules_keys_and_tables_are_rejected() {
        assert!(Allowlist::parse("[[allow]]\nrule = \"R9-x\"\n").is_err());
        assert!(Allowlist::parse("[[allow]]\nrle = \"R4-panic\"\n").is_err());
        assert!(Allowlist::parse("[settings]\n").is_err());
        assert!(Allowlist::parse("rule = \"R4-panic\"\n").is_err());
    }

    #[test]
    fn empty_and_comment_only_files_parse() {
        assert!(Allowlist::parse("").unwrap().entries.is_empty());
        assert!(Allowlist::parse("# nothing here\n\n")
            .unwrap()
            .entries
            .is_empty());
    }
}
