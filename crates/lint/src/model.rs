//! The workspace-wide analysis model behind the interprocedural rules
//! (DESIGN.md §14): every function in every scanned file, its parsed
//! body, its outgoing call sites, and a resolved call graph.
//!
//! Call resolution is heuristic, by name with context filters:
//!
//! - `name(...)` resolves to free functions named `name`;
//! - `.name(...)` resolves to receiver-taking methods named `name`,
//!   except for [`STD_SHADOWED`] names that overwhelmingly denote std
//!   methods (`push`, `insert`, `clone`, ...) — linking those would
//!   wire every `Vec::push` call site to any workspace method that
//!   happens to share the name;
//! - `Type::name(...)` resolves to methods in impls of `Type`
//!   (`Self::name` uses the caller's impl type), falling back to free
//!   functions for `module::name` qualifiers;
//! - candidates are restricted to the caller's crate and its transitive
//!   `ecds-*` dependencies, parsed from `crates/*/Cargo.toml`; crates
//!   absent from the dependency map (fixture workspaces) resolve
//!   permissively.
//!
//! Multiple surviving candidates all receive edges (an
//! over-approximation that errs toward flagging); `#[cfg(test)]` code
//! and `tests/`/`benches/` files are outside the graph entirely.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use proc_macro2::{Delimiter, TokenTree};
use syn::{Item, ItemFn, Receiver, Visibility};

use crate::scan::for_each_sibling_run;
use crate::source::{Role, SourceFile};

/// Method/free-call names excluded from call-graph resolution because
/// they are overwhelmingly std-library operations; linking them by bare
/// name would fabricate edges from every collection call site to
/// same-named workspace methods.
pub const STD_SHADOWED: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "peek",
    "extend",
    "reserve",
    "resize",
    "contains",
    "contains_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "map",
    "filter",
    "fold",
    "collect",
    "take",
    "replace",
    "min",
    "max",
    "abs",
    "new",
    "default",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "to_string",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "min_by",
    "max_by",
    "sum",
    "product",
];

/// How a call site was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)`.
    Free,
    /// `.name(...)`.
    Method,
    /// `Qualifier::name(...)`; the qualifier is the path segment
    /// directly before the final `::` (empty when not an identifier).
    Qualified(String),
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name.
    pub name: String,
    /// How the call was written.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: usize,
    /// 0-based source column.
    pub column: usize,
}

/// A token pattern hit inside a function body (a determinism-taint
/// source or an allocating construct), with its location.
#[derive(Debug, Clone)]
pub struct SiteHit {
    /// The matched construct, as reported (`thread_rng`, `.push()`,
    /// `Vec::with_capacity`, `vec!`).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// 0-based source column.
    pub column: usize,
}

/// One function in the workspace model.
#[derive(Debug)]
pub struct FnModel {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The function name.
    pub name: String,
    /// The impl base type, for methods.
    pub self_ty: Option<String>,
    /// The parsed receiver, if any.
    pub receiver: Option<Receiver>,
    /// `pub` or inherited.
    pub vis: Visibility,
    /// Whether any enclosing scope marks this function as test code.
    pub in_test: bool,
    /// Whether the function sits inside a trait impl (`impl Trait for
    /// Type`); such methods implement an external surface, not the
    /// type's own mutation API.
    pub in_trait_impl: bool,
    /// 1-based signature line.
    pub line: usize,
    /// 0-based signature column.
    pub column: usize,
    /// Raw body tokens (`None` for bodyless trait declarations).
    pub body: Option<Vec<TokenTree>>,
    /// The statement-level parse of the body, when it succeeded.
    pub block: Option<syn::body::Block>,
    /// Why the body was not statement-parsed (body present, parse
    /// failed). Counted as a skipped body in coverage reporting.
    pub skip_reason: Option<String>,
    /// Outgoing syntactic call sites.
    pub calls: Vec<CallSite>,
    /// Direct determinism-taint sources (R2's banned identifiers).
    pub taint_sites: Vec<SiteHit>,
    /// Direct allocating constructs.
    pub alloc_sites: Vec<SiteHit>,
    /// Whether a `// lint: alloc-free` marker certifies this function.
    pub alloc_free_root: bool,
}

impl FnModel {
    /// `Crate::name`-style display label for diagnostics.
    pub fn label(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The parsed workspace: files, functions, and the resolved call graph.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned files, sorted by relative path (discovery order does not
    /// leak into any output).
    pub files: Vec<SourceFile>,
    /// Every function, in (file, source) order.
    pub fns: Vec<FnModel>,
    /// Resolved callees per function, deduplicated and sorted.
    pub callees: Vec<Vec<usize>>,
}

impl Workspace {
    /// Builds the model from parsed files. `deps` maps each crate
    /// directory name to its transitive `ecds-*` dependency closure
    /// (see [`crate_deps`]); an empty map resolves permissively, which
    /// is what fixture workspaces want.
    pub fn new(mut files: Vec<SourceFile>, deps: &BTreeMap<String, BTreeSet<String>>) -> Workspace {
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let mut fns = Vec::new();
        for (idx, file) in files.iter().enumerate() {
            extract_fns(idx, file, &mut fns);
        }
        let callees = resolve_calls(&files, &fns, deps);
        Workspace {
            files,
            fns,
            callees,
        }
    }

    /// Builds a model from in-memory `(rel_path, source)` pairs with
    /// permissive dependency resolution — the fixture/test entry point.
    pub fn from_sources(sources: &[(&str, &str)]) -> Result<Workspace, String> {
        let mut files = Vec::new();
        for (rel_path, text) in sources {
            files.push(SourceFile::parse(rel_path, text)?);
        }
        Ok(Workspace::new(files, &BTreeMap::new()))
    }

    /// Function indices of workspace-graph members (non-test library
    /// and binary code).
    pub fn graph_members(&self) -> impl Iterator<Item = usize> + '_ {
        self.fns.iter().enumerate().filter_map(|(i, f)| {
            (!f.in_test && matches!(self.files[f.file].role, Role::Lib | Role::Bin)).then_some(i)
        })
    }

    /// Total function bodies and how many were statement-parsed.
    pub fn body_coverage(&self) -> (usize, usize) {
        let with_body = self.fns.iter().filter(|f| f.body.is_some()).count();
        let parsed = self.fns.iter().filter(|f| f.block.is_some()).count();
        (with_body, parsed)
    }

    /// Skipped bodies, itemized as (file, function, line, reason).
    pub fn skipped_bodies(&self) -> Vec<(String, String, usize, String)> {
        self.fns
            .iter()
            .filter_map(|f| {
                f.skip_reason.as_ref().map(|r| {
                    (
                        self.files[f.file].rel_path.clone(),
                        f.label(),
                        f.line,
                        r.clone(),
                    )
                })
            })
            .collect()
    }
}

/// Parses every `crates/*/Cargo.toml` under `root` and returns each
/// crate's transitive `ecds-*` dependency closure, keyed and valued by
/// crate directory name (`core` → {`pmf`, `cluster`, ...}).
pub fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return direct;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        let Ok(text) = std::fs::read_to_string(entry.path().join("Cargo.toml")) else {
            continue;
        };
        direct.insert(name, parse_dependency_names(&text));
    }
    // Transitive closure (the graph is tiny; iterate to fixpoint).
    let mut changed = true;
    while changed {
        changed = false;
        let keys: Vec<String> = direct.keys().cloned().collect();
        for k in keys {
            let deps: Vec<String> = direct[&k].iter().cloned().collect();
            let mut add = BTreeSet::new();
            for d in &deps {
                if let Some(dd) = direct.get(d) {
                    add.extend(dd.iter().cloned());
                }
            }
            let set = direct.get_mut(&k).expect("key exists");
            for a in add {
                changed |= set.insert(a);
            }
        }
    }
    direct
}

/// Extracts `ecds-*` dependency directory names from a `[dependencies]`
/// section (mini-TOML: section headers and `key = ...` lines).
fn parse_dependency_names(cargo_toml: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let mut in_dependencies = false;
    for line in cargo_toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_dependencies = line == "[dependencies]";
            continue;
        }
        if !in_dependencies {
            continue;
        }
        let Some(key) = line.split(['=', '.']).next() else {
            continue;
        };
        let key = key.trim();
        if key == "ecds" {
            deps.insert("ecds".to_string());
        } else if let Some(dir) = key.strip_prefix("ecds-") {
            deps.insert(dir.to_string());
        }
    }
    deps
}

/// Walks a file's items, tracking impl type and test context, and
/// appends one [`FnModel`] per function.
fn extract_fns(file_idx: usize, file: &SourceFile, out: &mut Vec<FnModel>) {
    fn walk(
        items: &[Item],
        file_idx: usize,
        file: &SourceFile,
        ctx: &FnCtx<'_>,
        inherited_test: bool,
        out: &mut Vec<FnModel>,
    ) {
        for item in items {
            let in_test = inherited_test || attrs_mark_test(item);
            match item {
                Item::Fn(f) => out.push(fn_model(file_idx, file, f, ctx, in_test)),
                Item::Impl(i) => {
                    let inner = FnCtx {
                        self_ty: Some(i.self_ty.as_str()),
                        in_trait_impl: i.trait_path.is_some(),
                    };
                    walk(&i.items, file_idx, file, &inner, in_test, out);
                }
                Item::Mod(m) => {
                    if let Some(content) = &m.content {
                        walk(content, file_idx, file, &FnCtx::default(), in_test, out);
                    }
                }
                _ => {}
            }
        }
    }
    let file_is_test = file.role == Role::Test;
    walk(
        &file.ast.items,
        file_idx,
        file,
        &FnCtx::default(),
        file_is_test,
        out,
    );
}

/// Impl context threaded through the item walk.
#[derive(Default)]
struct FnCtx<'a> {
    self_ty: Option<&'a str>,
    in_trait_impl: bool,
}

fn attrs_mark_test(item: &Item) -> bool {
    item.attrs().iter().any(|a| {
        a.path == "test"
            || a.path.ends_with("::test")
            || (a.path == "cfg" && a.contains_word("test"))
    })
}

fn fn_model(
    file_idx: usize,
    file: &SourceFile,
    f: &ItemFn,
    ctx: &FnCtx<'_>,
    in_test: bool,
) -> FnModel {
    let self_ty = ctx.self_ty;
    let start = f.sig.span.start();
    let body: Option<Vec<TokenTree>> = f.body.as_ref().map(|b| b.tokens().to_vec());
    let (block, skip_reason) = match &body {
        Some(tokens) => match syn::body::parse_block(tokens, f.sig.span) {
            Ok(b) => (Some(b), None),
            Err(e) => (None, Some(e.message().to_string())),
        },
        None => (None, None),
    };
    let mut calls = Vec::new();
    let mut taint_sites = Vec::new();
    let mut alloc_sites = Vec::new();
    if let Some(tokens) = &body {
        extract_sites(tokens, &mut calls, &mut taint_sites, &mut alloc_sites);
    }
    FnModel {
        file: file_idx,
        name: f.sig.ident.clone(),
        self_ty: self_ty.map(str::to_string),
        receiver: f.sig.receiver,
        vis: f.vis,
        in_test,
        in_trait_impl: ctx.in_trait_impl,
        line: start.line,
        column: start.column,
        body,
        block,
        skip_reason,
        calls,
        taint_sites,
        alloc_sites,
        alloc_free_root: file.alloc_free_lines.contains(&start.line),
    }
}

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "BinaryHeap",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "String",
    "Box",
    "Rc",
    "Arc",
];

/// Allocating associated-function names (`Vec::new`, `Box::new`, ...).
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter"];

/// Allocating method names (`.push(...)`, `.collect()`, ...).
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "reserve",
    "reserve_exact",
    "resize",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "split_off",
    "repeat",
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// One pass over every sibling run: call sites, determinism-taint
/// sources, and allocating constructs.
fn extract_sites(
    tokens: &[TokenTree],
    calls: &mut Vec<CallSite>,
    taint: &mut Vec<SiteHit>,
    alloc: &mut Vec<SiteHit>,
) {
    for_each_sibling_run(tokens, &mut |run| {
        for (i, t) in run.iter().enumerate() {
            let TokenTree::Ident(ident) = t else { continue };
            let name = ident.as_str();
            let start = t.span().start();

            if crate::rules::determinism::banned_source(name).is_some() {
                taint.push(SiteHit {
                    what: name.to_string(),
                    line: start.line,
                    column: start.column,
                });
            }

            // `name ! (...)`: a macro invocation, never a fn call.
            let macro_bang =
                matches!(run.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '!');
            if macro_bang {
                if ALLOC_MACROS.contains(&name) {
                    alloc.push(SiteHit {
                        what: format!("{name}!"),
                        line: start.line,
                        column: start.column,
                    });
                }
                continue;
            }

            // Optional turbofish between the name and the arguments.
            let after = skip_turbofish(run, i + 1);
            let is_call = matches!(
                run.get(after),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            );
            if !is_call {
                continue;
            }
            if is_keyword(name) {
                continue;
            }
            // `fn name(...)`: a nested definition, not a call.
            if matches!(prev_non_attr(run, i), Some(TokenTree::Ident(k)) if k.as_str() == "fn") {
                continue;
            }

            let dotted = matches!(run.get(i.wrapping_sub(1)), Some(TokenTree::Punct(p)) if p.as_char() == '.')
                && i >= 1;
            let pathed = i >= 2
                && matches!(run.get(i - 1), Some(TokenTree::Punct(p)) if p.as_char() == ':')
                && matches!(run.get(i - 2), Some(TokenTree::Punct(p)) if p.as_char() == ':');

            let kind = if dotted {
                if ALLOC_METHODS.contains(&name) {
                    alloc.push(SiteHit {
                        what: format!(".{name}()"),
                        line: start.line,
                        column: start.column,
                    });
                }
                CallKind::Method
            } else if pathed {
                let qualifier = qualifier_before(run, i - 2);
                if ALLOC_TYPES.contains(&qualifier.as_str()) && ALLOC_CTORS.contains(&name) {
                    alloc.push(SiteHit {
                        what: format!("{qualifier}::{name}"),
                        line: start.line,
                        column: start.column,
                    });
                }
                CallKind::Qualified(qualifier)
            } else {
                CallKind::Free
            };
            calls.push(CallSite {
                name: name.to_string(),
                kind,
                line: start.line,
                column: start.column,
            });
        }
    });
}

/// Skips a `::<...>` turbofish starting at `pos`, returning the index
/// after it (or `pos` unchanged if none is present).
fn skip_turbofish(run: &[TokenTree], pos: usize) -> usize {
    if !(matches!(run.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':')
        && matches!(run.get(pos + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':')
        && matches!(run.get(pos + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<'))
    {
        return pos;
    }
    let mut depth = 0i32;
    let mut j = pos + 2;
    while let Some(t) = run.get(j) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    pos
}

/// The path segment before a `::` at `sep` (index of the first `:`).
fn qualifier_before(run: &[TokenTree], sep: usize) -> String {
    // `Vec::<u8>::new`: step back over a closing turbofish to the type.
    let mut k = sep;
    if k >= 1 && matches!(run.get(k - 1), Some(TokenTree::Punct(p)) if p.as_char() == '>') {
        let mut depth = 0i32;
        while k > 0 {
            k -= 1;
            if let Some(TokenTree::Punct(p)) = run.get(k) {
                match p.as_char() {
                    '>' => depth += 1,
                    '<' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    match run.get(k.wrapping_sub(1)) {
        Some(TokenTree::Ident(q)) if k >= 1 => q.as_str().to_string(),
        _ => String::new(),
    }
}

fn prev_non_attr(run: &[TokenTree], i: usize) -> Option<&TokenTree> {
    if i == 0 {
        None
    } else {
        run.get(i - 1)
    }
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "else"
            | "move"
            | "unsafe"
            | "in"
            | "as"
            | "where"
    )
}

/// Resolves every function's call sites against the workspace.
fn resolve_calls(
    files: &[SourceFile],
    fns: &[FnModel],
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Vec<usize>> {
    // Resolution targets: non-test lib/bin functions, by name.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.in_test || !matches!(files[f.file].role, Role::Lib | Role::Bin) {
            continue;
        }
        by_name.entry(f.name.as_str()).or_default().push(i);
    }

    let crate_ok = |caller: &str, callee: &str| -> bool {
        if deps.is_empty() || caller == callee {
            return true;
        }
        match deps.get(caller) {
            // Fixture pretend-crates and top-level dirs resolve
            // permissively as callers.
            None => true,
            Some(set) => set.contains(callee),
        }
    };

    fns.iter()
        .map(|caller| {
            let caller_crate = files[caller.file].crate_name.as_str();
            let mut out: Vec<usize> = Vec::new();
            for call in &caller.calls {
                let Some(cands) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                for &ci in cands {
                    let callee = &fns[ci];
                    let callee_crate = files[callee.file].crate_name.as_str();
                    if !crate_ok(caller_crate, callee_crate) {
                        continue;
                    }
                    let matches = match &call.kind {
                        CallKind::Method => {
                            callee.receiver.is_some() && !STD_SHADOWED.contains(&call.name.as_str())
                        }
                        CallKind::Free => {
                            callee.self_ty.is_none() && !STD_SHADOWED.contains(&call.name.as_str())
                        }
                        CallKind::Qualified(q) if q == "Self" => {
                            callee.self_ty.is_some() && callee.self_ty == caller.self_ty
                        }
                        CallKind::Qualified(q) => {
                            callee.self_ty.as_deref() == Some(q.as_str())
                                || (callee.self_ty.is_none()
                                    && q.chars().next().is_some_and(|c| c.is_lowercase()))
                        }
                    };
                    if matches {
                        out.push(ci);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_sites_distinguish_free_method_and_qualified() {
        let ws = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "pub fn caller(s: &S) {\n\
                 helper(1);\n\
                 s.method_call();\n\
                 Shard::rebuild(s);\n\
                 mac!(ignored());\n\
             }\n\
             fn helper(x: u32) {}\n\
             pub struct S;\n\
             impl S { pub fn method_call(&self) {} }\n\
             pub struct Shard;\n\
             impl Shard { pub fn rebuild(s: &S) {} }\n",
        )])
        .unwrap();
        let caller = ws.fns.iter().position(|f| f.name == "caller").unwrap();
        let names: Vec<&str> = ws.callees[caller]
            .iter()
            .map(|&i| ws.fns[i].name.as_str())
            .collect();
        assert!(names.contains(&"helper"), "{names:?}");
        assert!(names.contains(&"method_call"), "{names:?}");
        assert!(names.contains(&"rebuild"), "{names:?}");
        // The macro body call still resolves (sibling-run recursion
        // enters the group) — an accepted over-approximation.
    }

    #[test]
    fn std_shadowed_method_names_do_not_link() {
        let ws = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "pub fn caller(q: &mut Q) { q.push(1); }\n\
             pub struct Q;\n\
             impl Q { pub fn push(&mut self, x: u32) {} }\n",
        )])
        .unwrap();
        let caller = ws.fns.iter().position(|f| f.name == "caller").unwrap();
        assert!(ws.callees[caller].is_empty());
        // ...but the site is still recorded as a direct allocation.
        assert_eq!(ws.fns[caller].alloc_sites.len(), 1);
        assert_eq!(ws.fns[caller].alloc_sites[0].what, ".push()");
    }

    #[test]
    fn test_regions_are_outside_the_graph() {
        let ws = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "pub fn caller() { helper(); }\n\
             #[cfg(test)]\n\
             mod tests { pub fn helper() {} }\n",
        )])
        .unwrap();
        let caller = ws.fns.iter().position(|f| f.name == "caller").unwrap();
        assert!(ws.callees[caller].is_empty());
    }

    #[test]
    fn taint_and_alloc_sites_are_extracted() {
        let ws = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "pub fn f() {\n\
                 let mut v = Vec::with_capacity(4);\n\
                 v.extend_from_slice(&[1]);\n\
                 let _ = vec![0u8; 8];\n\
                 let _r = rand::thread_rng();\n\
             }\n",
        )])
        .unwrap();
        let f = &ws.fns[0];
        let what: Vec<&str> = f.alloc_sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(
            what,
            vec!["Vec::with_capacity", ".extend_from_slice()", "vec!"]
        );
        assert_eq!(f.taint_sites.len(), 1);
        assert_eq!(f.taint_sites[0].what, "thread_rng");
    }

    #[test]
    fn dependency_names_parse_from_cargo_toml() {
        let deps = parse_dependency_names(
            "[package]\nname = \"ecds-core\"\n\n[dependencies]\n\
             ecds-pmf = { workspace = true }\necds-sim.workspace = true\n\
             rand = { workspace = true }\n\n[dev-dependencies]\necds-bench = { workspace = true }\n",
        );
        let got: Vec<&str> = deps.iter().map(String::as_str).collect();
        assert_eq!(got, vec!["pmf", "sim"]);
    }

    #[test]
    fn body_coverage_counts_skips() {
        let ws = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "pub fn fine() { work(); }\npub trait T { fn decl(&self); }\n",
        )])
        .unwrap();
        let (with_body, parsed) = ws.body_coverage();
        assert_eq!((with_body, parsed), (1, 1));
        assert!(ws.skipped_bodies().is_empty());
    }
}
