//! The per-file source model the rules operate on: workspace-relative
//! location, crate classification, raw text (for snippets and `// lint:`
//! markers), and the parsed item tree with test-region classification.

use std::path::Path;

use syn::{Attribute, Item};

/// Where a file sits inside its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Under `src/`, excluding `src/bin/` — library code.
    Lib,
    /// Under `src/bin/` — binary entry points.
    Bin,
    /// Under `tests/` — integration test code.
    Test,
    /// Under `benches/` — benchmark code.
    Bench,
}

/// A parsed workspace source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// The crate directory name under `crates/` (`sim`, `pmf`, ...), or
    /// the top-level directory (`tests`, `examples`) for non-crate files.
    pub crate_name: String,
    /// Library, binary, test, or bench code.
    pub role: Role,
    /// The raw source lines (for diagnostics and marker scanning).
    pub lines: Vec<String>,
    /// The parsed item tree.
    pub ast: syn::File,
    /// Type names annotated `// lint: epoch-guarded` in this file.
    pub epoch_guarded: Vec<String>,
    /// 1-based lines of `fn` signatures annotated `// lint: alloc-free`.
    pub alloc_free_lines: Vec<usize>,
}

impl SourceFile {
    /// Parses `text` as the file at `rel_path`. Returns the parse error
    /// message on failure so the engine can refuse to certify the file.
    pub fn parse(rel_path: &str, text: &str) -> Result<SourceFile, String> {
        let ast = syn::parse_file(text).map_err(|e| e.to_string())?;
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let (crate_name, role) = classify(rel_path);
        let epoch_guarded = scan_epoch_markers(&lines);
        let alloc_free_lines = scan_alloc_free_markers(&lines);
        Ok(SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            role,
            lines,
            ast,
            epoch_guarded,
            alloc_free_lines,
        })
    }

    /// The trimmed text of a 1-based source line.
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.saturating_sub(1))
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// Visits every item recursively (entering mods and impls), calling
    /// `visit` with the item and whether any enclosing scope — the file
    /// role or a `#[cfg(test)]` / `#[test]` attribute — marks it as test
    /// code.
    pub fn walk_items(&self, visit: &mut dyn FnMut(&Item, bool)) {
        let file_is_test = self.role == Role::Test;
        for item in &self.ast.items {
            walk_item(item, file_is_test, visit);
        }
    }
}

fn walk_item(item: &Item, inherited_test: bool, visit: &mut dyn FnMut(&Item, bool)) {
    let in_test = inherited_test || attrs_mark_test(item.attrs());
    visit(item, in_test);
    match item {
        Item::Mod(m) => {
            if let Some(content) = &m.content {
                for child in content {
                    walk_item(child, in_test, visit);
                }
            }
        }
        Item::Impl(i) => {
            for child in &i.items {
                walk_item(child, in_test, visit);
            }
        }
        _ => {}
    }
}

/// Whether an attribute list marks its item as test-only: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, ...))]`, or `#[cfg_attr(test, ...)]`
/// gates.
fn attrs_mark_test(attrs: &[Attribute]) -> bool {
    attrs.iter().any(|a| {
        a.path == "test"
            || a.path.ends_with("::test")
            || (a.path == "cfg" && a.contains_word("test"))
    })
}

/// Splits a workspace-relative path into (crate name, role).
fn classify(rel_path: &str) -> (String, Role) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest) = if parts.len() >= 3 && parts[0] == "crates" {
        (parts[1].to_string(), &parts[2..])
    } else {
        (
            parts.first().copied().unwrap_or("").to_string(),
            &parts[1..],
        )
    };
    let role = match rest.first().copied() {
        Some("src") => {
            if rest.get(1).copied() == Some("bin") {
                Role::Bin
            } else {
                Role::Lib
            }
        }
        Some("tests") => Role::Test,
        Some("benches") => Role::Bench,
        // Workspace-level `tests/` files arrive as ["tests", "x.rs"].
        _ if crate_name == "tests" => Role::Test,
        _ => Role::Lib,
    };
    (crate_name, role)
}

/// Finds `// lint: epoch-guarded` markers and resolves each to the type
/// named by the next `struct`/`enum`/`impl` line.
fn scan_epoch_markers(lines: &[String]) -> Vec<String> {
    let mut guarded = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("//") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(kind) = rest.strip_prefix("lint:") else {
            continue;
        };
        if kind.trim() != "epoch-guarded" {
            continue;
        }
        for follower in lines.iter().skip(i + 1) {
            let t = follower.trim();
            if t.is_empty() || t.starts_with("//") || t.starts_with("#[") {
                continue;
            }
            if let Some(name) = declared_type_name(t) {
                guarded.push(name);
            }
            break;
        }
    }
    guarded
}

/// Finds `// lint: alloc-free` markers and resolves each to the next
/// line declaring a `fn` (skipping comments, attributes, and blanks).
/// The R6 rule certifies the so-annotated function's transitive call
/// closure as allocation-free.
fn scan_alloc_free_markers(lines: &[String]) -> Vec<usize> {
    let mut marked = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("//") else {
            continue;
        };
        let Some(kind) = rest.trim_start().strip_prefix("lint:") else {
            continue;
        };
        if kind.trim() != "alloc-free" {
            continue;
        }
        for (j, follower) in lines.iter().enumerate().skip(i + 1) {
            let t = follower.trim();
            if t.is_empty() || t.starts_with("//") || t.starts_with("#[") {
                continue;
            }
            if t.split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .any(|w| w == "fn")
            {
                marked.push(j + 1);
            }
            break;
        }
    }
    marked
}

/// Extracts `Foo` from a line starting a `struct Foo` / `enum Foo` /
/// `impl Foo` declaration (with optional visibility).
fn declared_type_name(line: &str) -> Option<String> {
    let mut words = line
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty());
    loop {
        match words.next()? {
            "pub" | "crate" | "super" | "in" => continue,
            "struct" | "enum" | "union" | "impl" => {
                return words.next().map(str::to_string);
            }
            _ => return None,
        }
    }
}

/// Reads a file into a [`SourceFile`], normalizing the relative path.
pub fn load(root: &Path, rel_path: &Path) -> Result<SourceFile, String> {
    let text = std::fs::read_to_string(root.join(rel_path))
        .map_err(|e| format!("{}: {e}", rel_path.display()))?;
    let rel = rel_path
        .to_string_lossy()
        .replace(std::path::MAIN_SEPARATOR, "/");
    SourceFile::parse(&rel, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_crates_and_roles() {
        assert_eq!(
            classify("crates/sim/src/state.rs"),
            ("sim".to_string(), Role::Lib)
        );
        assert_eq!(
            classify("crates/bench/src/bin/experiments.rs"),
            ("bench".to_string(), Role::Bin)
        );
        assert_eq!(
            classify("crates/pmf/tests/properties.rs"),
            ("pmf".to_string(), Role::Test)
        );
        assert_eq!(
            classify("crates/bench/benches/micro.rs"),
            ("bench".to_string(), Role::Bench)
        );
        assert_eq!(
            classify("tests/integration_energy.rs"),
            ("tests".to_string(), Role::Test)
        );
    }

    #[test]
    fn epoch_markers_resolve_to_the_following_type() {
        let src = "\
// lint: epoch-guarded
#[derive(Debug)]
pub struct Tracked {
    epoch: u64,
}

pub struct Untracked;
";
        let f = SourceFile::parse("crates/sim/src/x.rs", src).unwrap();
        assert_eq!(f.epoch_guarded, vec!["Tracked".to_string()]);
    }

    #[test]
    fn walk_items_flags_cfg_test_regions() {
        let src = "\
pub fn prod() {}

#[cfg(test)]
mod tests {
    pub fn helper() {}
}
";
        let f = SourceFile::parse("crates/sim/src/x.rs", src).unwrap();
        let mut seen = Vec::new();
        f.walk_items(&mut |item, in_test| {
            if let Item::Fn(func) = item {
                seen.push((func.sig.ident.clone(), in_test));
            }
        });
        assert_eq!(
            seen,
            vec![("prod".to_string(), false), ("helper".to_string(), true)]
        );
    }
}
