//! `ecds-lint` — the workspace static-analysis pass that mechanically
//! enforces the determinism, epoch, and float invariants the results
//! depend on (DESIGN.md §9).
//!
//! Every correctness argument this reproduction ships rests on invariants
//! that used to live only in doc comments: the PR-1 prefix cache is sound
//! only if every [`CoreState`] mutator bumps the epoch; `results/` is
//! byte-stable only if no nondeterministic iteration order, wall clock, or
//! OS entropy reaches a result-affecting crate; comparison-driven branches
//! replay identically only if float ordering goes through `total_cmp`
//! rather than NaN-panicking `partial_cmp(..).unwrap()` chains. This crate
//! checks those properties on every CI run:
//!
//! - **R1 epoch-discipline** ([`rules`]): public `&mut self` methods on
//!   epoch-guarded types must bump `self.epoch` — since v2, on *every*
//!   exit path, proven by a per-function control-flow graph ([`mod@cfg`])
//!   over statement-parsed bodies.
//! - **R2 determinism**: `HashMap`/`HashSet`, `SystemTime`/`Instant`,
//!   `thread_rng`/`from_entropy`/`OsRng` are banned in result-affecting
//!   crates outside `#[cfg(test)]`.
//! - **R3 float-discipline**: `.partial_cmp(..).unwrap()` and float
//!   equality literals are flagged; `total_cmp` is the approved order.
//! - **R4 panic-discipline**: `unwrap`/`expect`/`panic!` in non-test
//!   library code must be audited and allowlisted with a rationale.
//! - **R5 determinism-taint**: a result-affecting function may not reach
//!   an R2-banned construct *transitively* through the workspace call
//!   graph ([`model`]) — laundering `thread_rng` through a helper crate
//!   is flagged with the full call chain.
//! - **R6 alloc-free**: functions annotated `// lint: alloc-free` must
//!   not reach allocating constructs (directly or via callees) outside
//!   audited sites — the hot-kernel allocation-freedom promise as a
//!   static certificate.
//!
//! Violations can be excused in `lint.toml` (see [`allowlist`]); an entry
//! that stops matching code is itself an error, and an entry matching
//! more than one diagnostic is an anchoring error, so the allowlist can
//! only shrink with the code it excuses and every rationale stays pinned
//! to its audited site. The parsing stack is the vendored
//! `proc-macro2`/`syn` subset (the same offline-vendoring pattern as
//! `rand`/`proptest`/`criterion`) extended with a statement-level body
//! parser (`syn::body`) feeding the CFGs.
//!
//! [`CoreState`]: https://docs.rs/ecds-sim

#![warn(missing_docs)]

pub mod allowlist;
pub mod cfg;
pub mod diag;
pub mod engine;
pub mod model;
pub mod report;
pub mod rules;
pub mod scan;
pub mod source;

pub use allowlist::{AllowEntry, Allowlist};
pub use diag::{Diagnostic, RuleId};
pub use engine::{find_root, run_on_sources, run_workspace, RunResult};
