//! `ecds-lint` — the workspace static-analysis pass that mechanically
//! enforces the determinism, epoch, and float invariants the results
//! depend on (DESIGN.md §9).
//!
//! Every correctness argument this reproduction ships rests on invariants
//! that used to live only in doc comments: the PR-1 prefix cache is sound
//! only if every [`CoreState`] mutator bumps the epoch; `results/` is
//! byte-stable only if no nondeterministic iteration order, wall clock, or
//! OS entropy reaches a result-affecting crate; comparison-driven branches
//! replay identically only if float ordering goes through `total_cmp`
//! rather than NaN-panicking `partial_cmp(..).unwrap()` chains. This crate
//! checks those properties on every CI run:
//!
//! - **R1 epoch-discipline** ([`rules`]): public `&mut self` methods on
//!   epoch-guarded types must bump `self.epoch`.
//! - **R2 determinism**: `HashMap`/`HashSet`, `SystemTime`/`Instant`,
//!   `thread_rng`/`from_entropy`/`OsRng` are banned in result-affecting
//!   crates outside `#[cfg(test)]`.
//! - **R3 float-discipline**: `.partial_cmp(..).unwrap()` and float
//!   equality literals are flagged; `total_cmp` is the approved order.
//! - **R4 panic-discipline**: `unwrap`/`expect`/`panic!` in non-test
//!   library code must be audited and allowlisted with a rationale.
//!
//! Violations can be excused in `lint.toml` (see [`allowlist`]); an entry
//! that stops matching code is itself an error, so the allowlist can only
//! shrink with the code it excuses. The parsing stack is the vendored
//! `proc-macro2` + `syn` subset — the same offline-vendoring pattern as
//! `rand`/`proptest`/`criterion`.
//!
//! [`CoreState`]: https://docs.rs/ecds-sim

#![warn(missing_docs)]

pub mod allowlist;
pub mod diag;
pub mod engine;
pub mod report;
pub mod rules;
pub mod scan;
pub mod source;

pub use allowlist::{AllowEntry, Allowlist};
pub use diag::{Diagnostic, RuleId};
pub use engine::{find_root, run_workspace, RunResult};
