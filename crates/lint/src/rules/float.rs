//! R3 float-discipline: no raw float equality, no
//! `partial_cmp(..).unwrap()` chains.
//!
//! Impulse reduction is non-associative, so every comparison-driven branch
//! in the pmf pipeline must order floats identically on every platform and
//! in every rerun. Two patterns undermine that:
//!
//! - **`.partial_cmp(x).unwrap()` / `.expect(...)`** — panics on NaN and
//!   hides the decision of how incomparable values order. `f64::total_cmp`
//!   is the approved helper: total, NaN-safe, and explicit.
//! - **`==` / `!=` with a float operand** — almost always a bug when the
//!   operand was computed (rounding breaks the comparison); the rare
//!   legitimate uses compare against an exact sentinel that was *stored*,
//!   never computed, and must be allowlisted with that rationale.
//!
//! The equality check is a heuristic: without type inference it flags
//! comparisons where either operand token is a float *literal* (`x ==
//! 0.0`). Computed-float comparisons with no literal operand are beyond a
//! syntactic pass; clippy's `float_cmp` complements this rule in-editor.
//!
//! The `partial_cmp` pattern is checked everywhere, including tests and
//! benches — a test that panics on NaN is as wrong as library code. The
//! equality heuristic skips test regions, where exact comparison against a
//! literal is often the point of the assertion.

use proc_macro2::TokenTree;
use syn::Item;

use crate::diag::{Diagnostic, RuleId};
use crate::scan::{for_each_sibling_run, is_float_literal, is_ident, is_punct, operator_runs};
use crate::source::SourceFile;

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    file.walk_items(&mut |item, in_test| {
        let scan = |tokens: &[TokenTree], out: &mut Vec<Diagnostic>| {
            for_each_sibling_run(tokens, &mut |run| {
                scan_partial_cmp_unwrap(file, run, out);
                if !in_test {
                    scan_float_eq(file, run, out);
                }
            });
        };
        match item {
            Item::Fn(f) => {
                if let Some(body) = &f.body {
                    scan(body.tokens(), out);
                }
            }
            Item::Verbatim(v) => scan(v.tokens.tokens(), out),
            Item::Use(_) | Item::Mod(_) | Item::Impl(_) => {}
        }
    });
}

/// Flags `.partial_cmp(args).unwrap()` and `.partial_cmp(args).expect(..)`
/// method chains. Definitions of `fn partial_cmp` and bare
/// `.partial_cmp(x)` calls (whose `Option` is handled) are not flagged.
fn scan_partial_cmp_unwrap(file: &SourceFile, run: &[TokenTree], out: &mut Vec<Diagnostic>) {
    for i in 0..run.len() {
        if !is_ident(&run[i], "partial_cmp") {
            continue;
        }
        // Must be a method call: preceded by `.`, followed by `(args)`.
        let preceded_by_dot = i > 0 && is_punct(&run[i - 1], '.');
        let called = matches!(
            run.get(i + 1),
            Some(TokenTree::Group(g)) if g.delimiter() == proc_macro2::Delimiter::Parenthesis
        );
        if !preceded_by_dot || !called {
            continue;
        }
        let unwrapped = is_punct_at(run, i + 2, '.')
            && matches!(
                run.get(i + 3),
                Some(TokenTree::Ident(id)) if id.as_str() == "unwrap" || id.as_str() == "expect"
            );
        if !unwrapped {
            continue;
        }
        let start = run[i].span().start();
        out.push(Diagnostic {
            rule: RuleId::FloatDiscipline,
            file: file.rel_path.clone(),
            line: start.line,
            column: start.column,
            snippet: file.line_text(start.line).to_string(),
            message: "`.partial_cmp(..).unwrap()` panics on NaN and hides the ordering decision"
                .to_string(),
            suggestion: "use `a.total_cmp(&b)` — the approved total, NaN-safe float order"
                .to_string(),
            allowed: None,
        });
    }
}

fn is_punct_at(run: &[TokenTree], i: usize, ch: char) -> bool {
    run.get(i).is_some_and(|t| is_punct(t, ch))
}

/// Flags `==` / `!=` where either adjacent operand token is a float
/// literal.
fn scan_float_eq(file: &SourceFile, run: &[TokenTree], out: &mut Vec<Diagnostic>) {
    for op in operator_runs(run) {
        if op.op != "==" && op.op != "!=" {
            continue;
        }
        let before_is_float = op.start > 0
            && matches!(&run[op.start - 1], TokenTree::Literal(l) if is_float_literal(&l.to_string()));
        let after_is_float = matches!(
            run.get(op.end),
            Some(TokenTree::Literal(l)) if is_float_literal(&l.to_string())
        );
        if !(before_is_float || after_is_float) {
            continue;
        }
        let start = run[op.start].span().start();
        out.push(Diagnostic {
            rule: RuleId::FloatDiscipline,
            file: file.rel_path.clone(),
            line: start.line,
            column: start.column,
            snippet: file.line_text(start.line).to_string(),
            message: format!("`{}` compares floats exactly", op.op),
            suggestion: "compare with an explicit tolerance, or allowlist with the rationale \
                         that the operand is an exact stored sentinel, never computed"
                .to_string(),
            allowed: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(path, src).unwrap();
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn partial_cmp_unwrap_and_expect_are_flagged() {
        let out = diags(
            "crates/pmf/src/x.rs",
            "pub fn sortit(xs: &mut Vec<f64>) {\n\
                 xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                 xs.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"));\n\
             }",
        );
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].line, out[1].line), (2, 3));
        assert!(out[0].suggestion.contains("total_cmp"));
    }

    #[test]
    fn total_cmp_and_handled_partial_cmp_pass() {
        let out = diags(
            "crates/pmf/src/x.rs",
            "pub fn sortit(xs: &mut Vec<f64>) {\n\
                 xs.sort_by(|a, b| a.total_cmp(b));\n\
             }\n\
             pub fn tri(a: f64, b: f64) -> Option<std::cmp::Ordering> {\n\
                 a.partial_cmp(&b)\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn fn_partial_cmp_definitions_are_not_flagged() {
        let out = diags(
            "crates/sim/src/x.rs",
            "impl PartialOrd for E {\n\
                 fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n\
                     Some(self.cmp(other))\n\
                 }\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn float_equality_is_flagged_on_either_side() {
        let out = diags(
            "crates/sim/src/x.rs",
            "pub fn f(x: f64) -> bool { x == 0.0 }\n\
             pub fn g(x: f64) -> bool { 1.0 != x }",
        );
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("=="));
        assert!(out[1].message.contains("!="));
    }

    #[test]
    fn integer_equality_and_le_ge_pass() {
        let out = diags(
            "crates/sim/src/x.rs",
            "pub fn f(x: u32, y: f64) -> bool { x == 0 && y <= 1.0 && y >= 0.0 }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn float_equality_in_tests_is_tolerated_but_partial_cmp_is_not() {
        let out = diags(
            "crates/sim/tests/t.rs",
            "fn t(xs: &mut Vec<f64>) {\n\
                 assert!(xs[0] == 1.0);\n\
                 xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
             }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }
}
