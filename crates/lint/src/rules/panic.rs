//! R4 panic-discipline: no `unwrap`/`expect`/`panic!` in non-test library
//! code unless audited and allowlisted.
//!
//! Library crates are driven by the bench harness over thousands of
//! trials, including `run_parallel` workers whose panics are caught,
//! drained, and re-raised; a stray `unwrap` deep in the pmf pipeline turns
//! a representable error (an empty pmf, a saturated queue) into an abort
//! of the whole grid. Every panic site in library code must therefore be
//! either converted to a `Result`/`Option` flow or audited: the allowlist
//! entry's `reason` documents the invariant that makes the panic
//! unreachable, and the lint prints it alongside the site.
//!
//! `#[cfg(test)]` regions, `tests/`, and `benches/` are exempt — panicking
//! is how tests fail. Driver binaries (`crates/bench`) are exempt by
//! scope: a CLI aborting on a broken invariant is the desired behavior.

use proc_macro2::{Delimiter, TokenTree};
use syn::Item;

use crate::diag::{Diagnostic, RuleId};
use crate::rules::PANIC_SCOPE_CRATES;
use crate::scan::{for_each_sibling_run, is_punct};
use crate::source::{Role, SourceFile};

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !PANIC_SCOPE_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    if file.role != Role::Lib {
        return;
    }
    file.walk_items(&mut |item, in_test| {
        if in_test {
            return;
        }
        let scan = |tokens: &[TokenTree], out: &mut Vec<Diagnostic>| {
            for_each_sibling_run(tokens, &mut |run| scan_run(file, run, out));
        };
        match item {
            Item::Fn(f) => {
                if let Some(body) = &f.body {
                    scan(body.tokens(), out);
                }
            }
            Item::Verbatim(v) => scan(v.tokens.tokens(), out),
            Item::Use(_) | Item::Mod(_) | Item::Impl(_) => {}
        }
    });
}

fn scan_run(file: &SourceFile, run: &[TokenTree], out: &mut Vec<Diagnostic>) {
    for (i, t) in run.iter().enumerate() {
        let TokenTree::Ident(ident) = t else { continue };
        let name = ident.as_str();
        let flagged = match name {
            // `.unwrap()` / `.expect(..)` method calls, or `Option::unwrap`
            // path references passed as functions.
            "unwrap" | "expect" => {
                let preceded = i > 0 && (is_punct(&run[i - 1], '.') || is_punct(&run[i - 1], ':'));
                let called_or_referenced = matches!(
                    run.get(i + 1),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) || i + 1 == run.len()
                    || !matches!(run.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':');
                preceded && called_or_referenced
            }
            // `panic!(..)` macro invocations.
            "panic" => run.get(i + 1).is_some_and(|n| is_punct(n, '!')),
            _ => false,
        };
        if !flagged {
            continue;
        }
        let start = t.span().start();
        out.push(Diagnostic {
            rule: RuleId::PanicDiscipline,
            file: file.rel_path.clone(),
            line: start.line,
            column: start.column,
            snippet: file.line_text(start.line).to_string(),
            message: format!("`{name}` in non-test library code can abort a whole trial grid"),
            suggestion: "return a Result/Option, or allowlist in lint.toml with the invariant \
                         that makes this site unreachable"
                .to_string(),
            allowed: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(path, src).unwrap();
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn unwrap_expect_and_panic_are_flagged() {
        let out = diags(
            "crates/pmf/src/x.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n\
                 let a = x.unwrap();\n\
                 let b = x.expect(\"present\");\n\
                 if a != b { panic!(\"mismatch\"); }\n\
                 a\n\
             }",
        );
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn unwrap_or_variants_pass() {
        let out = diags(
            "crates/pmf/src/x.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n\
                 x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_regions_and_test_files_pass() {
        let out_mod = diags(
            "crates/pmf/src/x.rs",
            "#[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
             }",
        );
        let out_file = diags("crates/pmf/tests/t.rs", "fn t() { Some(1).unwrap(); }");
        assert!(out_mod.is_empty(), "{out_mod:?}");
        assert!(out_file.is_empty(), "{out_file:?}");
    }

    #[test]
    fn out_of_scope_crates_pass() {
        let out = diags(
            "crates/bench/src/x.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn fields_named_expect_do_not_confuse_the_rule() {
        let out = diags(
            "crates/sim/src/x.rs",
            "pub struct S { unwrap: bool }\n\
             pub fn f(s: &S) -> bool { s.unwrap }",
        );
        // Field access `s.unwrap` is preceded by `.` and not followed by
        // `(`: treated as a reference and flagged conservatively — rename
        // the field or allowlist. Documented sharp edge.
        assert_eq!(out.len(), 1);
    }
}
