//! R2 determinism: result-affecting crates must not use nondeterministic
//! iteration order, wall-clock reads, or OS entropy.
//!
//! The `results/` tree is asserted byte-identical across reruns, machines,
//! and thread counts; every grid number in `results/grid.csv` and every
//! claim in EXPERIMENTS.md depends on it. `HashMap`/`HashSet` iteration
//! order is randomized per process (SipHash keys from OS entropy), so any
//! iteration that reaches an outcome, an accumulation order (float
//! reduction is non-associative), or a report line breaks byte-stability.
//! Wall-clock reads (`SystemTime::now`, `Instant::now`) and entropy-seeded
//! RNGs (`thread_rng`, `from_entropy`, `OsRng`) are nondeterministic by
//! construction; all simulation randomness must flow from the vendored
//! xoshiro `StdRng` seeded with explicit trial seeds.
//!
//! The checkpoint codec crate (`crates/persist`) is held to the same bans
//! plus a stricter layout table: a checkpoint written on one platform must
//! restore bit-identically on any other, so pointer-width integers
//! (`usize`/`isize`) and native-endian conversions
//! (`to_ne_bytes`/`from_ne_bytes`) may not appear anywhere in its wire
//! format code — every width is an explicit `u8`/`u16`/`u32`/`u64`,
//! little-endian.
//!
//! `#[cfg(test)]` regions and `tests/` / `benches/` files are exempt:
//! test-only iteration cannot reach `results/`.

use proc_macro2::TokenTree;
use syn::Item;

use crate::diag::{Diagnostic, RuleId};
use crate::rules::RESULT_AFFECTING_CRATES;
use crate::scan::for_each_sibling_run;
use crate::source::{Role, SourceFile};

/// Banned identifier → (what is wrong, what to use instead).
const BANNED: &[(&str, &str, &str)] = &[
    (
        "HashMap",
        "nondeterministic iteration order in a result-affecting crate",
        "use BTreeMap (deterministic key order) or a Vec keyed by dense indices",
    ),
    (
        "HashSet",
        "nondeterministic iteration order in a result-affecting crate",
        "use BTreeSet (deterministic order) or a sorted Vec",
    ),
    (
        "RandomState",
        "per-process random hasher state in a result-affecting crate",
        "use BTree collections or a fixed, documented hasher",
    ),
    (
        "SystemTime",
        "wall-clock read in a result-affecting crate",
        "thread simulated Time through the call instead of reading the OS clock",
    ),
    (
        "Instant",
        "wall-clock read in a result-affecting crate",
        "move timing to crates/bench; simulation code must be replayable",
    ),
    (
        "thread_rng",
        "OS-entropy RNG in a result-affecting crate",
        "use the vendored StdRng::seed_from_u64 with an explicit trial seed",
    ),
    (
        "from_entropy",
        "OS-entropy RNG seeding in a result-affecting crate",
        "use the vendored StdRng::seed_from_u64 with an explicit trial seed",
    ),
    (
        "OsRng",
        "OS-entropy RNG in a result-affecting crate",
        "use the vendored StdRng::seed_from_u64 with an explicit trial seed",
    ),
];

/// Additional bans for the checkpoint codec crate: the wire format must be
/// platform-independent (DESIGN.md §12), so pointer-width types and
/// native-endian byte orders may not appear in `crates/persist` library
/// code at all.
const PERSIST_BANNED: &[(&str, &str, &str)] = &[
    (
        "usize",
        "pointer-width integer in the checkpoint wire format",
        "use an explicit u8/u16/u32/u64 wire width; cast with `as _` at std boundaries",
    ),
    (
        "isize",
        "pointer-width integer in the checkpoint wire format",
        "use an explicit fixed-width integer for the wire representation",
    ),
    (
        "to_ne_bytes",
        "native-endian encoding is platform-dependent",
        "use to_le_bytes: the checkpoint format is little-endian everywhere",
    ),
    (
        "from_ne_bytes",
        "native-endian decoding is platform-dependent",
        "use from_le_bytes: the checkpoint format is little-endian everywhere",
    ),
];

/// Looks up `name` in the determinism ban table, returning `(name,
/// problem, fix)`. The R5 taint rule treats any function containing one
/// of these identifiers as a taint source, wherever it lives.
pub fn banned_source(name: &str) -> Option<(&'static str, &'static str, &'static str)> {
    BANNED.iter().copied().find(|(n, _, _)| *n == name)
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let persist = file.crate_name == "persist";
    if !persist && !RESULT_AFFECTING_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    if !matches!(file.role, Role::Lib | Role::Bin) {
        return;
    }
    file.walk_items(&mut |item, in_test| {
        if in_test {
            return;
        }
        let scan = |tokens: &[TokenTree], out: &mut Vec<Diagnostic>| {
            scan_banned(file, tokens, persist, out);
        };
        match item {
            Item::Fn(f) => {
                scan(f.sig.inputs.tokens(), out);
                scan(f.sig.output.tokens(), out);
                if let Some(body) = &f.body {
                    scan(body.tokens(), out);
                }
            }
            Item::Use(u) => scan(u.tree.tokens(), out),
            Item::Verbatim(v) => scan(v.tokens.tokens(), out),
            // Mod/Impl contents are visited as their own items.
            Item::Mod(_) | Item::Impl(_) => {}
        }
    });
}

fn scan_banned(file: &SourceFile, tokens: &[TokenTree], persist: bool, out: &mut Vec<Diagnostic>) {
    for_each_sibling_run(tokens, &mut |run| {
        for t in run {
            let TokenTree::Ident(ident) = t else { continue };
            let persist_extra = persist.then(|| PERSIST_BANNED.iter()).into_iter().flatten();
            let Some((name, problem, fix)) = BANNED
                .iter()
                .chain(persist_extra)
                .find(|(name, _, _)| ident.as_str() == *name)
            else {
                continue;
            };
            let start = t.span().start();
            out.push(Diagnostic {
                rule: RuleId::Determinism,
                file: file.rel_path.clone(),
                line: start.line,
                column: start.column,
                snippet: file.line_text(start.line).to_string(),
                message: format!("`{name}`: {problem}"),
                suggestion: fix.to_string(),
                allowed: None,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(path, src).unwrap();
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn hashmap_in_core_lib_code_is_flagged() {
        let out = diags(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n\
             pub fn f() -> HashMap<u32, u32> { HashMap::new() }",
        );
        assert_eq!(out.len(), 3); // the use, the return type, the call
        assert!(out[0].message.contains("HashMap"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let out = diags(
            "crates/sim/src/x.rs",
            "pub fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use std::collections::HashSet;\n\
                 fn t() { let _ = HashSet::<u32>::new(); }\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn non_result_affecting_crates_are_exempt() {
        let out = diags(
            "crates/bench/src/x.rs",
            "use std::time::Instant;\n\
             pub fn now() -> Instant { Instant::now() }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wall_clock_and_entropy_are_flagged() {
        let out = diags(
            "crates/sim/src/x.rs",
            "pub fn bad(seed: u64) {\n\
                 let _t = std::time::Instant::now();\n\
                 let _w = std::time::SystemTime::now();\n\
                 let _r = rand::thread_rng();\n\
             }",
        );
        let names: Vec<&str> = out
            .iter()
            .map(|d| {
                if d.message.contains("Instant") {
                    "Instant"
                } else if d.message.contains("SystemTime") {
                    "SystemTime"
                } else {
                    "thread_rng"
                }
            })
            .collect();
        assert_eq!(names, vec!["Instant", "SystemTime", "thread_rng"]);
    }

    #[test]
    fn struct_fields_and_consts_are_scanned() {
        let out = diags(
            "crates/ext/src/x.rs",
            "pub struct Index {\n\
                 map: std::collections::HashMap<u32, u32>,\n\
             }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn persist_wire_format_bans_pointer_widths_and_native_endian() {
        let out = diags(
            "crates/persist/src/x.rs",
            "pub fn bad(n: usize) -> Vec<u8> {\n\
                 let w = n.to_ne_bytes();\n\
                 let _ = usize::from_ne_bytes(w);\n\
                 w.to_vec()\n\
             }",
        );
        let hits = |needle: &str| out.iter().filter(|d| d.message.contains(needle)).count();
        assert_eq!(hits("`usize`"), 2, "{out:#?}");
        assert_eq!(hits("to_ne_bytes"), 1, "{out:#?}");
        assert_eq!(hits("from_ne_bytes"), 1, "{out:#?}");
    }

    #[test]
    fn persist_is_also_held_to_the_wall_clock_bans() {
        let out = diags(
            "crates/persist/src/x.rs",
            "pub fn stamp() -> u64 {\n\
                 let _ = std::time::SystemTime::now();\n\
                 0\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("SystemTime"));
    }

    #[test]
    fn persist_tests_and_other_crates_keep_their_pointer_widths() {
        // Pointer widths are idiomatic everywhere else; the layout table is
        // persist-only, and persist's own test regions are exempt.
        let out = diags(
            "crates/sim/src/x.rs",
            "pub fn fine(n: usize) -> usize { n }",
        );
        assert!(out.is_empty(), "{out:?}");
        let out = diags(
            "crates/persist/tests/x.rs",
            "pub fn fine(n: usize) -> usize { n }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tests_dir_files_are_exempt() {
        let out = diags(
            "crates/sim/tests/props.rs",
            "use std::collections::HashMap;\nfn f() { let _: HashMap<u8, u8>; }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
