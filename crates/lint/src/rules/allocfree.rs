//! R6 alloc-free certification: a function annotated
//! `// lint: alloc-free` must not reach an allocating construct —
//! directly or through any resolved callee.
//!
//! The fused pmf kernels and the indexed evaluation paths are the inner
//! loops of every experiment; DESIGN.md promises they run allocation-free
//! after scratch warm-up so their cost model (and the mega-scale scaling
//! argument) holds. The promise used to live in comments and one
//! allocation-counting test; R6 makes it a static certificate. The
//! allocating vocabulary is syntactic — container constructors
//! (`Vec::new`, `Box::new`, `String::from`, ...), growth methods
//! (`.push()`, `.extend()`, `.collect()`, `.clone()`, ...), and the
//! `vec!`/`format!` macros — detected in every function of the marked
//! root's transitive call closure. Sites that are provably amortized or
//! cold (error paths, one-time warm-up) are audited in lint.toml, never
//! silently ignored.
//!
//! Call resolution is the heuristic documented in [`crate::model`]: an
//! over-approximation (extra candidate edges may flag too much, and the
//! allowlist absorbs audited noise) except for calls into non-workspace
//! code, which are invisible — std and vendored callees are instead
//! covered by the direct-site vocabulary at the call site itself.

use std::collections::VecDeque;

use crate::diag::{Diagnostic, RuleId};
use crate::model::Workspace;

/// Runs the rule over the workspace model.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let n = ws.fns.len();
    let member: Vec<bool> = {
        let mut m = vec![false; n];
        for i in ws.graph_members() {
            m[i] = true;
        }
        m
    };

    // Forward multi-source BFS from the marked roots; `origin[i]`
    // remembers (root, parent) so every finding can print how the
    // closure reached it.
    let mut origin: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut queue = VecDeque::new();
    for i in 0..n {
        if member[i] && ws.fns[i].alloc_free_root {
            origin[i] = Some((i, i));
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        let root = origin[cur].expect("queued nodes have origins").0;
        for &callee in &ws.callees[cur] {
            if member[callee] && origin[callee].is_none() {
                origin[callee] = Some((root, cur));
                queue.push_back(callee);
            }
        }
    }

    let mut flagged: Vec<(String, usize)> = Vec::new();
    for i in 0..n {
        let Some((root, _)) = origin[i] else { continue };
        let f = &ws.fns[i];
        let file = &ws.files[f.file];

        // Chain from the root down to this function.
        let mut chain = vec![i];
        let mut cur = i;
        while let Some((_, parent)) = origin[cur] {
            if parent == cur {
                break;
            }
            chain.push(parent);
            cur = parent;
        }
        chain.reverse();
        let rendered: Vec<String> = chain.iter().map(|&k| ws.fns[k].label()).collect();
        let via = if chain.len() > 1 {
            format!(" via {}", rendered.join(" -> "))
        } else {
            String::new()
        };

        for site in &f.alloc_sites {
            // One diagnostic per (file, line): several sites on one line
            // would defeat unambiguous allowlist anchoring.
            if flagged.contains(&(file.rel_path.clone(), site.line)) {
                continue;
            }
            flagged.push((file.rel_path.clone(), site.line));
            out.push(Diagnostic {
                rule: RuleId::AllocFree,
                file: file.rel_path.clone(),
                line: site.line,
                column: site.column,
                snippet: file.line_text(site.line).to_string(),
                message: format!(
                    "`{}` allocates inside the alloc-free closure of `{}`{}",
                    site.what,
                    ws.fns[root].label(),
                    via,
                ),
                suggestion: "move the allocation out of the certified hot path (pre-size \
                             it in the scratch arena or hoist it to setup), or allowlist \
                             this site in lint.toml with a rationale proving it is cold \
                             or amortized"
                    .to_string(),
                allowed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources).unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn direct_allocation_in_a_marked_function_is_flagged() {
        let out = diags(&[(
            "crates/pmf/src/kernel.rs",
            "// lint: alloc-free\n\
             pub fn convolve(out_buf: &mut [f64]) {\n\
                 let scratch = Vec::with_capacity(out_buf.len());\n\
                 drop(scratch);\n\
             }\n",
        )]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(
            out[0].message.contains("Vec::with_capacity"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn allocation_in_a_transitive_callee_is_flagged_with_the_chain() {
        let out = diags(&[(
            "crates/pmf/src/kernel.rs",
            "// lint: alloc-free\n\
             pub fn convolve(out_buf: &mut [f64]) { accumulate(out_buf); }\n\
             fn accumulate(out_buf: &mut [f64]) { grow(out_buf); }\n\
             fn grow(out_buf: &mut [f64]) { let mut v = vec![0.0]; v.push(1.0); }\n",
        )]);
        assert_eq!(out.len(), 1, "one line, one diagnostic: {out:#?}");
        let d = &out[0];
        assert_eq!(d.line, 4);
        assert!(d.message.contains("vec!"), "{}", d.message);
        assert!(
            d.message.contains("convolve -> accumulate -> grow"),
            "{}",
            d.message
        );
    }

    #[test]
    fn unmarked_functions_allocate_freely() {
        let out = diags(&[(
            "crates/pmf/src/kernel.rs",
            "pub fn setup() -> Vec<f64> { let mut v = Vec::new(); v.push(0.0); v }\n",
        )]);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn functions_outside_the_closure_are_not_flagged() {
        let out = diags(&[(
            "crates/pmf/src/kernel.rs",
            "// lint: alloc-free\n\
             pub fn hot(x: &mut [f64]) { scale(x); }\n\
             fn scale(x: &mut [f64]) { for v in x.iter_mut() { *v *= 2.0; } }\n\
             pub fn cold() { let _ = vec![1]; }\n",
        )]);
        assert!(out.is_empty(), "{out:#?}");
    }
}
