//! R5 determinism-taint: no function in a result-affecting crate may
//! *transitively* reach an R2-banned construct through the call graph.
//!
//! R2 flags direct uses of nondeterministic constructs (`HashMap`
//! iteration, wall-clock reads, entropy-seeded RNGs) inside
//! result-affecting crates, but it cannot see a banned call *laundered
//! through a helper crate*: a `crates/bench`-style utility that calls
//! `thread_rng()` is outside R2's scope, yet a simulation function that
//! calls the utility inherits the nondeterminism all the same. R5 closes
//! that hole: every function containing a banned identifier is a taint
//! source, taint propagates backward over the resolved call graph, and
//! any result-affecting function that reaches a source *outside* R2's
//! own scope is flagged with a representative call chain.
//!
//! Functions whose direct uses R2 already reports are not re-flagged
//! (one diagnostic per root cause), and sources inside R2-scoped crates
//! are likewise left to R2 — R5 only reports laundering that no
//! per-file rule can see.

use std::collections::VecDeque;

use crate::diag::{Diagnostic, RuleId};
use crate::model::Workspace;
use crate::rules::RESULT_AFFECTING_CRATES;

/// Whether R2 itself scans `crate_name` (result-affecting ∪ persist);
/// taint sources inside these crates are R2's findings, not R5's.
fn r2_scoped(crate_name: &str) -> bool {
    crate_name == "persist" || RESULT_AFFECTING_CRATES.contains(&crate_name)
}

/// Runs the rule over the workspace model.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let n = ws.fns.len();
    let member: Vec<bool> = {
        let mut m = vec![false; n];
        for i in ws.graph_members() {
            m[i] = true;
        }
        m
    };

    // Reverse adjacency over the resolved graph, members only.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in ws.callees.iter().enumerate() {
        if !member[caller] {
            continue;
        }
        for &callee in callees {
            if member[callee] {
                callers[callee].push(caller);
            }
        }
    }

    // Multi-source backward BFS from out-of-scope taint sources.
    // `next_hop[i]` points one step along a shortest path toward a
    // source, giving each flagged function a deterministic chain.
    let mut next_hop: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    for i in 0..n {
        if member[i]
            && !ws.fns[i].taint_sites.is_empty()
            && !r2_scoped(&ws.files[ws.fns[i].file].crate_name)
        {
            next_hop[i] = Some(i);
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &p in &callers[cur] {
            if next_hop[p].is_none() {
                next_hop[p] = Some(cur);
                queue.push_back(p);
            }
        }
    }

    for i in 0..n {
        let f = &ws.fns[i];
        let file = &ws.files[f.file];
        if !member[i] || !RESULT_AFFECTING_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        // Direct uses are R2's diagnostics; re-flagging them here would
        // double-report one root cause.
        if !f.taint_sites.is_empty() {
            continue;
        }
        if next_hop[i].is_none() {
            continue;
        }

        // Walk the chain to the source for the report.
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(next) = next_hop[cur] {
            if next == cur {
                break;
            }
            chain.push(next);
            cur = next;
        }
        let source = *chain.last().expect("chain starts at i");
        let src_fn = &ws.fns[source];
        let banned = src_fn
            .taint_sites
            .first()
            .map(|s| s.what.clone())
            .unwrap_or_default();
        let rendered: Vec<String> = chain
            .iter()
            .map(|&k| {
                format!(
                    "{}::{}",
                    ws.files[ws.fns[k].file].crate_name,
                    ws.fns[k].label()
                )
            })
            .collect();
        out.push(Diagnostic {
            rule: RuleId::TaintDiscipline,
            file: file.rel_path.clone(),
            line: f.line,
            column: f.column,
            snippet: file.line_text(f.line).to_string(),
            message: format!(
                "`{}` transitively reaches R2-banned `{}` via {}",
                f.label(),
                banned,
                rendered.join(" -> "),
            ),
            suggestion: "break the chain: inject the nondeterministic input (time, \
                         randomness, ordering) as an explicit parameter at the crate \
                         boundary, or allowlist this function in lint.toml with a \
                         rationale proving the tainted callee cannot affect results"
                .to_string(),
            allowed: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_hop_laundering_through_a_helper_crate_is_flagged() {
        let ws = Workspace::from_sources(&[
            (
                "crates/sim/src/engine.rs",
                "pub fn step(w: &mut World) { jitter(w); }\n",
            ),
            (
                "crates/bench/src/noise.rs",
                "pub fn jitter(w: &mut World) { perturb(w); }\n\
                 fn perturb(w: &mut World) { let _ = rand::thread_rng(); }\n",
            ),
        ])
        .unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        let d = &out[0];
        assert_eq!(d.rule, RuleId::TaintDiscipline);
        assert_eq!(d.file, "crates/sim/src/engine.rs");
        assert!(d.message.contains("thread_rng"), "{}", d.message);
        assert!(
            d.message
                .contains("sim::step -> bench::jitter -> bench::perturb"),
            "{}",
            d.message
        );
    }

    #[test]
    fn direct_uses_are_left_to_r2() {
        let ws = Workspace::from_sources(&[(
            "crates/sim/src/engine.rs",
            "pub fn step() { let _ = std::time::Instant::now(); }\n",
        )])
        .unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn sources_inside_r2_scope_are_left_to_r2() {
        // core::helper's Instant is flagged by R2 in core itself;
        // re-reporting every caller would duplicate one root cause.
        let ws = Workspace::from_sources(&[
            (
                "crates/sim/src/engine.rs",
                "pub fn step() { helper_now(); }\n",
            ),
            (
                "crates/core/src/time.rs",
                "pub fn helper_now() { let _ = std::time::Instant::now(); }\n",
            ),
        ])
        .unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn non_result_affecting_callers_are_not_flagged() {
        let ws = Workspace::from_sources(&[(
            "crates/bench/src/driver.rs",
            "pub fn run() { now(); }\npub fn now() { let _ = std::time::Instant::now(); }\n",
        )])
        .unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
