//! The rule implementations. Each rule is a function from a parsed
//! [`SourceFile`] to zero or more
//! [`Diagnostic`]s; scoping (which crates, which
//! roles, test vs. non-test regions) lives inside each rule so the engine
//! can run all rules over every file unconditionally.

mod determinism;
mod epoch;
mod float;
mod panic;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Crates whose code can reach `results/` bytes: the pmf arithmetic, the
/// cluster/workload models, the mapper, the engine, the extensions, and
/// the statistics that format the report. Nondeterminism in any of these
/// invalidates the reproduction's byte-stability argument (DESIGN.md §9).
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "pmf", "cluster", "workload", "core", "sim", "ext", "stats", "ecds",
];

/// Library crates subject to the panic-discipline rule. The `bench`
/// driver binaries and the linter itself are tools, not library surface.
pub const PANIC_SCOPE_CRATES: &[&str] = &[
    "pmf", "cluster", "workload", "core", "sim", "ext", "stats", "ecds",
];

/// Runs every rule over one file, appending diagnostics.
pub fn check_all(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    epoch::check(file, out);
    determinism::check(file, out);
    float::check(file, out);
    panic::check(file, out);
}
