//! The rule implementations. The per-file rules (R2/R3/R4) map a parsed
//! [`crate::source::SourceFile`] to zero or more [`Diagnostic`]s; the
//! flow-sensitive and interprocedural rules (R1v2/R5/R6) run over the
//! whole-workspace [`Workspace`] model. Scoping (which crates, which
//! roles, test vs. non-test regions) lives inside each rule so the engine
//! can run all rules over everything unconditionally.

pub mod allocfree;
pub mod determinism;
pub mod epoch;
pub mod float;
pub mod panic;
pub mod taint;

use crate::diag::Diagnostic;
use crate::model::Workspace;

/// Crates whose code can reach `results/` bytes: the pmf arithmetic, the
/// cluster/workload models, the mapper, the engine, the extensions, and
/// the statistics that format the report. Nondeterminism in any of these
/// invalidates the reproduction's byte-stability argument (DESIGN.md §9).
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "pmf", "cluster", "workload", "core", "sim", "ext", "stats", "ecds",
];

/// Library crates subject to the panic-discipline rule. The `bench`
/// driver binaries and the linter itself are tools, not library surface.
pub const PANIC_SCOPE_CRATES: &[&str] = &[
    "pmf", "cluster", "workload", "core", "sim", "ext", "stats", "ecds",
];

/// Runs every rule over the workspace model, appending diagnostics: the
/// per-file rules (R2/R3/R4) over each parsed file, then the
/// flow-sensitive and interprocedural rules (R1v2/R5/R6) over the
/// function and call-graph model.
pub fn check_workspace(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        determinism::check(file, out);
        float::check(file, out);
        panic::check(file, out);
    }
    epoch::check(ws, out);
    taint::check(ws, out);
    allocfree::check(ws, out);
}
