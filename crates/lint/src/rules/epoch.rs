//! R1 epoch-discipline: every public `&mut self` method on an
//! epoch-guarded type must bump `self.epoch`.
//!
//! The PR-1 queue-prefix pmf cache keys its entries on
//! [`CoreState::epoch`]: two observations with equal epochs are assumed to
//! have seen identical executing/queued state, so a mutator that forgets
//! to bump the epoch silently serves stale cached prefixes and corrupts
//! every downstream robustness number. `CoreState` is always guarded; any
//! other type can opt in with a `// lint: epoch-guarded` marker comment
//! above its declaration.
//!
//! The check is syntactic: the method body must contain a literal
//! `self.epoch += 1` (at any nesting depth). Methods that legitimately
//! mutate without bumping — there are none today — must be allowlisted
//! with a rationale. Conditional bumps (as in `pop_queued`, which only
//! mutates when the queue is non-empty) satisfy the rule because the bump
//! exists on the mutating path; the rule deliberately does not attempt
//! path-sensitive dataflow.

use proc_macro2::TokenTree;
use syn::{Item, ItemImpl, Visibility};

use crate::diag::{Diagnostic, RuleId};
use crate::scan::{for_each_sibling_run, is_ident, is_punct};
use crate::source::SourceFile;

/// Types guarded in every file, marker or no marker.
const ALWAYS_GUARDED: &[&str] = &["CoreState"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    file.walk_items(&mut |item, in_test| {
        if in_test {
            return;
        }
        let Item::Impl(imp) = item else {
            return;
        };
        if imp.trait_path.is_some() {
            return; // trait impls don't define the mutation surface
        }
        let guarded = ALWAYS_GUARDED.contains(&imp.self_ty.as_str())
            || file.epoch_guarded.contains(&imp.self_ty);
        if guarded {
            check_impl(file, imp, out);
        }
    });
}

fn check_impl(file: &SourceFile, imp: &ItemImpl, out: &mut Vec<Diagnostic>) {
    for member in &imp.items {
        let Item::Fn(f) = member else { continue };
        if f.vis != Visibility::Public {
            continue;
        }
        let Some(recv) = f.sig.receiver else { continue };
        if !(recv.reference && recv.mutable) {
            continue;
        }
        let bumps = f
            .body
            .as_ref()
            .is_some_and(|body| contains_epoch_bump(body.tokens()));
        if !bumps {
            let start = f.sig.span.start();
            out.push(Diagnostic {
                rule: RuleId::EpochDiscipline,
                file: file.rel_path.clone(),
                line: start.line,
                column: start.column,
                snippet: file.line_text(start.line).to_string(),
                message: format!(
                    "pub fn {}(&mut self) on epoch-guarded type `{}` never bumps `self.epoch`",
                    f.sig.ident, imp.self_ty
                ),
                suggestion: "add `self.epoch += 1;` on the mutating path, or allowlist the \
                             method in lint.toml with a rationale if it provably cannot \
                             change observable state"
                    .to_string(),
                allowed: None,
            });
        }
    }
}

/// Whether the body contains `self.epoch += 1` at any nesting depth.
fn contains_epoch_bump(tokens: &[TokenTree]) -> bool {
    let mut found = false;
    for_each_sibling_run(tokens, &mut |run| {
        if found {
            return;
        }
        for w in run.windows(6) {
            if is_ident(&w[0], "self")
                && is_punct(&w[1], '.')
                && is_ident(&w[2], "epoch")
                && is_punct(&w[3], '+')
                && is_punct(&w[4], '=')
                && matches!(&w[5], TokenTree::Literal(l) if l.to_string() == "1")
            {
                found = true;
                return;
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/sim/src/state.rs", src).unwrap();
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn mutator_without_bump_is_flagged() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn enqueue(&mut self, x: u32) { self.queued.push(x); }\n\
             }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("enqueue"));
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn mutator_with_bump_passes_even_conditionally() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn enqueue(&mut self, x: u32) { self.queued.push(x); self.epoch += 1; }\n\
                 pub fn pop(&mut self) -> Option<u32> {\n\
                     let p = self.queued.pop();\n\
                     if p.is_some() { self.epoch += 1; }\n\
                     p\n\
                 }\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn readers_value_receivers_and_private_methods_are_exempt() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn depth(&self) -> usize { 0 }\n\
                 pub fn into_inner(self) -> u64 { self.epoch }\n\
                 fn internal(&mut self) {}\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn marker_comment_extends_the_guarded_set() {
        let src = "\
// lint: epoch-guarded
pub struct Tracked { epoch: u64 }

impl Tracked {
    pub fn touch(&mut self) {}
}

impl CoreState {
    pub fn fine(&mut self) { self.epoch += 1; }
}
";
        let out = diags(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Tracked"));
    }

    #[test]
    fn trait_impls_and_test_impls_are_ignored() {
        let out = diags(
            "impl Clone for CoreState {\n\
                 fn clone(&self) -> Self { todo!() }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 impl CoreState {\n\
                     pub fn poke(&mut self) {}\n\
                 }\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
