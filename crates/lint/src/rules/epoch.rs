//! R1 epoch-discipline (v2, flow-sensitive): every public `&mut self`
//! method on an epoch-guarded type must bump `self.epoch` on **every**
//! exit path.
//!
//! The PR-1 queue-prefix pmf cache keys its entries on
//! `CoreState::epoch`: two observations with equal epochs are assumed to
//! have seen identical executing/queued state, so a mutator that forgets
//! to bump the epoch silently serves stale cached prefixes and corrupts
//! every downstream robustness number. `CoreState` is always guarded; any
//! other type can opt in with a `// lint: epoch-guarded` marker comment
//! above its declaration.
//!
//! v1 of this rule only required a literal `self.epoch += 1` *somewhere*
//! in the body, which a branchy mutator could satisfy while leaking an
//! unbumped early `return` or `?` propagation. v2 lowers the parsed body
//! to a [`Cfg`] and runs the must-bump dataflow in
//! [`Cfg::missed_exits`]: each exit edge on which the bump may not have
//! executed yields its own diagnostic, anchored at the escaping
//! statement. Methods whose body the statement parser cannot shape fall
//! back to the v1 whole-body check and are itemized as skipped bodies in
//! the coverage report.

use proc_macro2::TokenTree;
use syn::Visibility;

use crate::cfg::{Cfg, EdgeKind, NodeKind};
use crate::diag::{Diagnostic, RuleId};
use crate::model::{FnModel, Workspace};
use crate::scan::{for_each_sibling_run, is_ident, is_punct};
use crate::source::SourceFile;

/// Types guarded in every file, marker or no marker.
const ALWAYS_GUARDED: &[&str] = &["CoreState"];

/// Runs the rule over the workspace model.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.fns {
        let file = &ws.files[f.file];
        if f.in_test || f.in_trait_impl || f.vis != Visibility::Public {
            continue;
        }
        let Some(recv) = f.receiver else { continue };
        if !(recv.reference && recv.mutable) {
            continue;
        }
        let Some(self_ty) = f.self_ty.as_deref() else {
            continue;
        };
        let guarded =
            ALWAYS_GUARDED.contains(&self_ty) || file.epoch_guarded.iter().any(|t| t == self_ty);
        if !guarded {
            continue;
        }
        check_method(file, f, self_ty, out);
    }
}

fn check_method(file: &SourceFile, f: &FnModel, self_ty: &str, out: &mut Vec<Diagnostic>) {
    let bumps_somewhere = f
        .body
        .as_ref()
        .is_some_and(|body| contains_epoch_bump(body));
    if !bumps_somewhere {
        out.push(Diagnostic {
            rule: RuleId::EpochDiscipline,
            file: file.rel_path.clone(),
            line: f.line,
            column: f.column,
            snippet: file.line_text(f.line).to_string(),
            message: format!(
                "pub fn {}(&mut self) on epoch-guarded type `{}` never bumps `self.epoch`",
                f.name, self_ty
            ),
            suggestion: "add `self.epoch += 1;` on the mutating path, or allowlist the \
                         method in lint.toml with a rationale if it provably cannot \
                         change observable state"
                .to_string(),
            allowed: None,
        });
        return;
    }
    // A bump exists somewhere; the flow-sensitive pass asks whether it
    // covers every exit. Unparseable bodies keep the v1 answer (the
    // engine itemizes them as skipped).
    let Some(block) = &f.block else { return };
    let cfg = Cfg::build(block);
    let gen: Vec<bool> = cfg
        .nodes
        .iter()
        .map(|n| contains_epoch_bump(&n.tokens))
        .collect();
    for miss in cfg.missed_exits(&gen) {
        let node = &cfg.nodes[miss.node];
        let start = node.span.start();
        let path = match (miss.kind, node.kind) {
            (EdgeKind::Early, _) => "may exit via `?` before bumping `self.epoch`",
            (_, NodeKind::Return) => "returns without bumping `self.epoch` on this path",
            (_, NodeKind::Break) => "breaks to the function exit without bumping `self.epoch`",
            _ => "can fall through to the exit without bumping `self.epoch`",
        };
        out.push(Diagnostic {
            rule: RuleId::EpochDiscipline,
            file: file.rel_path.clone(),
            line: start.line,
            column: start.column,
            snippet: file.line_text(start.line).to_string(),
            message: format!(
                "pub fn {}(&mut self) on epoch-guarded type `{}` {}",
                f.name, self_ty, path
            ),
            suggestion: "bump `self.epoch` before this exit so every path that may have \
                         mutated state also invalidates the prefix cache, or allowlist \
                         this exit in lint.toml with a rationale proving it leaves \
                         observable state unchanged"
                .to_string(),
            allowed: None,
        });
    }
}

/// Whether the tokens contain `self.epoch += 1` at any nesting depth.
pub(crate) fn contains_epoch_bump(tokens: &[TokenTree]) -> bool {
    let mut found = false;
    for_each_sibling_run(tokens, &mut |run| {
        if found {
            return;
        }
        for w in run.windows(6) {
            if is_ident(&w[0], "self")
                && is_punct(&w[1], '.')
                && is_ident(&w[2], "epoch")
                && is_punct(&w[3], '+')
                && is_punct(&w[4], '=')
                && matches!(&w[5], TokenTree::Literal(l) if l.to_string() == "1")
            {
                found = true;
                return;
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(&[("crates/sim/src/state.rs", src)]).unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn mutator_without_bump_is_flagged() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn enqueue(&mut self, x: u32) { self.queued.push(x); }\n\
             }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("enqueue"));
        assert!(out[0].message.contains("never bumps"));
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn unconditional_bump_passes() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn enqueue(&mut self, x: u32) { self.queued.push(x); self.epoch += 1; }\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn conditional_bump_flags_the_fall_through_exit() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn pop(&mut self) -> Option<u32> {\n\
                     let p = self.queued.pop();\n\
                     if p.is_some() { self.epoch += 1; }\n\
                     p\n\
                 }\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("fall through"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].line, 5, "anchored at the trailing `p` expression");
    }

    #[test]
    fn early_return_before_the_bump_is_flagged_at_the_return() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn restamp(&mut self, n: u32) {\n\
                     if n == 0 {\n\
                         return;\n\
                     }\n\
                     self.stamp = n;\n\
                     self.epoch += 1;\n\
                 }\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("returns without"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn bump_on_every_branch_passes() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn toggle(&mut self, on: bool) {\n\
                     if on {\n\
                         self.flag = true;\n\
                         self.epoch += 1;\n\
                     } else {\n\
                         self.flag = false;\n\
                         self.epoch += 1;\n\
                     }\n\
                 }\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn question_mark_before_the_bump_is_flagged_as_early_exit() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn absorb(&mut self, s: &str) -> Result<(), Error> {\n\
                     let v = s.parse::<u64>()?;\n\
                     self.total += v;\n\
                     self.epoch += 1;\n\
                     Ok(())\n\
                 }\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`?`"), "{}", out[0].message);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn readers_value_receivers_and_private_methods_are_exempt() {
        let out = diags(
            "impl CoreState {\n\
                 pub fn depth(&self) -> usize { 0 }\n\
                 pub fn into_inner(self) -> u64 { self.epoch }\n\
                 fn internal(&mut self) {}\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn marker_comment_extends_the_guarded_set() {
        let src = "\
// lint: epoch-guarded
pub struct Tracked { epoch: u64 }

impl Tracked {
    pub fn touch(&mut self) {}
}

impl CoreState {
    pub fn fine(&mut self) { self.epoch += 1; }
}
";
        let out = diags(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Tracked"));
    }

    #[test]
    fn trait_impls_and_test_impls_are_ignored() {
        let out = diags(
            "impl Clone for CoreState {\n\
                 fn clone(&self) -> Self { todo!() }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 impl CoreState {\n\
                     pub fn poke(&mut self) {}\n\
                 }\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
