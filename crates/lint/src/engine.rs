//! The lint driver: workspace discovery, rule execution, allowlist
//! application.

use std::io;
use std::path::{Path, PathBuf};

use crate::allowlist::{AllowEntry, Allowlist};
use crate::diag::Diagnostic;
use crate::rules;
use crate::source;

/// Directories scanned inside each crate under `crates/`.
const CRATE_SUBDIRS: &[&str] = &["src", "tests", "benches"];

/// Path components that exclude a file from linting: rule fixtures are
/// intentional violations.
const EXCLUDED_COMPONENTS: &[&str] = &["fixtures"];

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct RunResult {
    /// Files parsed and scanned.
    pub files_scanned: usize,
    /// Every diagnostic, allowlisted or not, sorted by (file, line,
    /// column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Allowlist entries that matched no diagnostic.
    pub stale_entries: Vec<AllowEntry>,
    /// Files that failed to parse (path: message). A parse failure fails
    /// the run: the linter must not certify code it could not read.
    pub parse_errors: Vec<String>,
}

impl RunResult {
    /// Diagnostics not covered by the allowlist.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_none())
    }

    /// Diagnostics excused by the allowlist.
    pub fn allowed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_some())
    }

    /// Whether the workspace passes: no unallowlisted violations, no
    /// stale allowlist entries, no unparseable files.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
            && self.stale_entries.is_empty()
            && self.parse_errors.is_empty()
    }
}

/// Lints the workspace rooted at `root`, reading the allowlist from
/// `<root>/lint.toml` (missing file = empty allowlist).
pub fn run_workspace(root: &Path) -> io::Result<RunResult> {
    let allowlist_path = root.join("lint.toml");
    let allowlist = if allowlist_path.exists() {
        let text = std::fs::read_to_string(&allowlist_path)?;
        Allowlist::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
    } else {
        Allowlist::default()
    };
    run_with_allowlist(root, &allowlist)
}

/// Lints the workspace with an explicit allowlist (test entry point).
pub fn run_with_allowlist(root: &Path, allowlist: &Allowlist) -> io::Result<RunResult> {
    let mut result = RunResult::default();
    for rel_path in discover(root)? {
        match source::load(root, &rel_path) {
            Ok(file) => {
                result.files_scanned += 1;
                rules::check_all(&file, &mut result.diagnostics);
            }
            Err(msg) => result.parse_errors.push(msg),
        }
    }
    result.diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    result.stale_entries = allowlist.apply(&mut result.diagnostics);
    Ok(result)
}

/// Collects every lintable `.rs` file: `crates/*/{src,tests,benches}` and
/// the workspace-level `tests/` and `examples/` directories. Sorted for
/// deterministic output; fixture directories excluded.
pub fn discover(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            for sub in CRATE_SUBDIRS {
                let dir = entry.path().join(sub);
                if dir.is_dir() {
                    collect_rs(&dir, &mut files)?;
                }
            }
        }
    }
    for top in ["tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .filter(|p| {
            !p.components().any(|c| {
                EXCLUDED_COMPONENTS
                    .iter()
                    .any(|x| c.as_os_str().to_string_lossy() == *x)
            })
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to find the workspace root: the first
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
