//! The lint driver: workspace discovery, model construction, rule
//! execution, allowlist application, and the coverage gate.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::allowlist::{AllowEntry, Allowlist};
use crate::diag::Diagnostic;
use crate::model::{self, Workspace};
use crate::rules;
use crate::source;

/// Directories scanned inside each crate under `crates/`.
const CRATE_SUBDIRS: &[&str] = &["src", "tests", "benches"];

/// Path components that exclude a file from linting: rule fixtures are
/// intentional violations.
const EXCLUDED_COMPONENTS: &[&str] = &["fixtures"];

/// Minimum percentage of function bodies the statement parser must
/// shape for the run to certify the workspace. Below this, the
/// flow-sensitive rules are reasoning about too little of the code for
/// "0 violations" to mean anything.
pub const MIN_BODY_COVERAGE_PCT: usize = 95;

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct RunResult {
    /// Files parsed and scanned.
    pub files_scanned: usize,
    /// Every diagnostic, allowlisted or not, sorted by (file, line,
    /// column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Allowlist entries that matched no diagnostic.
    pub stale_entries: Vec<AllowEntry>,
    /// Allowlist entries that matched more than one diagnostic, with
    /// their match counts; such entries excuse nothing.
    pub ambiguous_entries: Vec<(AllowEntry, usize)>,
    /// Files that failed to parse (path: message). A parse failure fails
    /// the run: the linter must not certify code it could not read.
    pub parse_errors: Vec<String>,
    /// Function bodies present in the workspace.
    pub bodies_total: usize,
    /// Function bodies the statement parser shaped (CFG-analyzable).
    pub bodies_parsed: usize,
    /// Bodies the statement parser skipped, as (file, function,
    /// signature line, reason).
    pub skipped_bodies: Vec<(String, String, usize, String)>,
    /// Wall-clock time of the run in milliseconds. Excluded from the
    /// artifact drift check (`git diff -I` in CI); everything else in
    /// the JSON report is byte-stable.
    pub elapsed_ms: u128,
}

impl RunResult {
    /// Diagnostics not covered by the allowlist.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_none())
    }

    /// Diagnostics excused by the allowlist.
    pub fn allowed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_some())
    }

    /// Body coverage in tenths of a percent (998 = 99.8%); an empty
    /// workspace counts as full coverage.
    pub fn coverage_permille(&self) -> usize {
        (self.bodies_parsed * 1000)
            .checked_div(self.bodies_total)
            .unwrap_or(1000)
    }

    /// Whether enough bodies were statement-parsed for the
    /// flow-sensitive rules to certify the workspace.
    pub fn coverage_ok(&self) -> bool {
        self.coverage_permille() >= MIN_BODY_COVERAGE_PCT * 10
    }

    /// Whether the workspace passes: no unallowlisted violations, no
    /// stale or ambiguous allowlist entries, no unparseable files, and
    /// body coverage at or above [`MIN_BODY_COVERAGE_PCT`].
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
            && self.stale_entries.is_empty()
            && self.ambiguous_entries.is_empty()
            && self.parse_errors.is_empty()
            && self.coverage_ok()
    }
}

/// Lints the workspace rooted at `root`, reading the allowlist from
/// `<root>/lint.toml` (missing file = empty allowlist).
pub fn run_workspace(root: &Path) -> io::Result<RunResult> {
    let allowlist_path = root.join("lint.toml");
    let allowlist = if allowlist_path.exists() {
        let text = std::fs::read_to_string(&allowlist_path)?;
        Allowlist::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
    } else {
        Allowlist::default()
    };
    run_with_allowlist(root, &allowlist)
}

/// The lint's own wall time is reporting-only: `elapsed_ms` is excluded
/// from the report's byte-stability contract (CI masks it when diffing),
/// so the R2 clock ban does not apply to this one read.
#[allow(clippy::disallowed_methods)]
fn start_clock() -> Instant {
    Instant::now()
}

/// Lints the workspace with an explicit allowlist (test entry point).
pub fn run_with_allowlist(root: &Path, allowlist: &Allowlist) -> io::Result<RunResult> {
    let started = start_clock();
    let mut parse_errors = Vec::new();
    let mut files = Vec::new();
    for rel_path in discover(root)? {
        match source::load(root, &rel_path) {
            Ok(file) => files.push(file),
            Err(msg) => parse_errors.push(msg),
        }
    }
    let deps = model::crate_deps(root);
    let ws = Workspace::new(files, &deps);
    let mut result = finish_run(&ws, allowlist);
    result.parse_errors = parse_errors;
    result.elapsed_ms = started.elapsed().as_millis();
    Ok(result)
}

/// Lints in-memory `(rel_path, source)` pairs with permissive crate
/// resolution — the fixture/property-test entry point. Source order
/// does not affect the result (the workspace sorts by path).
pub fn run_on_sources(
    sources: &[(&str, &str)],
    allowlist: &Allowlist,
) -> Result<RunResult, String> {
    let started = start_clock();
    let ws = Workspace::from_sources(sources)?;
    let mut result = finish_run(&ws, allowlist);
    result.elapsed_ms = started.elapsed().as_millis();
    Ok(result)
}

/// Shared back half of a run: rules, deterministic ordering, allowlist,
/// coverage accounting.
fn finish_run(ws: &Workspace, allowlist: &Allowlist) -> RunResult {
    let mut result = RunResult {
        files_scanned: ws.files.len(),
        ..RunResult::default()
    };
    rules::check_workspace(ws, &mut result.diagnostics);
    result.diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    let outcome = allowlist.apply(&mut result.diagnostics);
    result.stale_entries = outcome.stale;
    result.ambiguous_entries = outcome.ambiguous;
    let (total, parsed) = ws.body_coverage();
    result.bodies_total = total;
    result.bodies_parsed = parsed;
    result.skipped_bodies = ws.skipped_bodies();
    result
}

/// Collects every lintable `.rs` file: `crates/*/{src,tests,benches}` and
/// the workspace-level `tests/` and `examples/` directories. Sorted for
/// deterministic output; fixture directories excluded.
pub fn discover(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            for sub in CRATE_SUBDIRS {
                let dir = entry.path().join(sub);
                if dir.is_dir() {
                    collect_rs(&dir, &mut files)?;
                }
            }
        }
    }
    for top in ["tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .filter(|p| {
            !p.components().any(|c| {
                EXCLUDED_COMPONENTS
                    .iter()
                    .any(|x| c.as_os_str().to_string_lossy() == *x)
            })
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to find the workspace root: the first
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
