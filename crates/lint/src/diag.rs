//! Diagnostic types shared by the rule implementations, the allowlist, and
//! the reporters.

use std::fmt;

/// The four enforced invariants (DESIGN.md §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: every public `&mut self` method on an epoch-guarded type must
    /// bump `self.epoch`.
    EpochDiscipline,
    /// R2: no nondeterministic collections, wall-clock reads, or OS
    /// entropy in result-affecting crates.
    Determinism,
    /// R3: no raw float equality or `partial_cmp(..).unwrap()` — use
    /// `total_cmp` and explicit tolerances.
    FloatDiscipline,
    /// R4: no `unwrap`/`expect`/`panic!` in non-test library code unless
    /// audited and allowlisted.
    PanicDiscipline,
}

impl RuleId {
    /// The stable identifier used in `lint.toml`, CLI output, and
    /// `results/LINT.json`.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::EpochDiscipline => "R1-epoch",
            RuleId::Determinism => "R2-determinism",
            RuleId::FloatDiscipline => "R3-float",
            RuleId::PanicDiscipline => "R4-panic",
        }
    }

    /// Parses the stable identifier (for allowlist entries).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "R1-epoch" => Some(RuleId::EpochDiscipline),
            "R2-determinism" => Some(RuleId::Determinism),
            "R3-float" => Some(RuleId::FloatDiscipline),
            "R4-panic" => Some(RuleId::PanicDiscipline),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub fn all() -> [RuleId; 4] {
        [
            RuleId::EpochDiscipline,
            RuleId::Determinism,
            RuleId::FloatDiscipline,
            RuleId::PanicDiscipline,
        ]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which invariant was violated.
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes
    /// (`crates/sim/src/state.rs`).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 0-based column of the offending token.
    pub column: usize,
    /// The trimmed source line, for context and allowlist matching.
    pub snippet: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// `Some(reason)` when an allowlist entry covers this diagnostic.
    pub allowed: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.column, self.rule, self.message
        )?;
        writeln!(f, "    | {}", self.snippet)?;
        write!(f, "    = suggestion: {}", self.suggestion)?;
        if let Some(reason) = &self.allowed {
            write!(f, "\n    = allowed: {reason}")?;
        }
        Ok(())
    }
}
