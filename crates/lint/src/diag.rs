//! Diagnostic types shared by the rule implementations, the allowlist, and
//! the reporters.

use std::fmt;

/// The six enforced invariants (DESIGN.md §9, §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: every public `&mut self` method on an epoch-guarded type must
    /// bump `self.epoch` on every exit path (flow-sensitive since v2).
    EpochDiscipline,
    /// R2: no nondeterministic collections, wall-clock reads, or OS
    /// entropy in result-affecting crates.
    Determinism,
    /// R3: no raw float equality or `partial_cmp(..).unwrap()` — use
    /// `total_cmp` and explicit tolerances.
    FloatDiscipline,
    /// R4: no `unwrap`/`expect`/`panic!` in non-test library code unless
    /// audited and allowlisted.
    PanicDiscipline,
    /// R5: no function in a result-affecting crate may *transitively*
    /// reach an R2-banned construct through the call graph (the
    /// "banned call laundered through a helper crate" hole in R2).
    TaintDiscipline,
    /// R6: functions annotated `// lint: alloc-free` must not
    /// transitively reach allocating constructs outside audited sites.
    AllocFree,
}

impl RuleId {
    /// The stable identifier used in `lint.toml`, CLI output, and
    /// `results/LINT.json`.
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::EpochDiscipline => "R1-epoch",
            RuleId::Determinism => "R2-determinism",
            RuleId::FloatDiscipline => "R3-float",
            RuleId::PanicDiscipline => "R4-panic",
            RuleId::TaintDiscipline => "R5-taint",
            RuleId::AllocFree => "R6-allocfree",
        }
    }

    /// Parses the stable identifier (for allowlist entries).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "R1-epoch" => Some(RuleId::EpochDiscipline),
            "R2-determinism" => Some(RuleId::Determinism),
            "R3-float" => Some(RuleId::FloatDiscipline),
            "R4-panic" => Some(RuleId::PanicDiscipline),
            "R5-taint" => Some(RuleId::TaintDiscipline),
            "R6-allocfree" => Some(RuleId::AllocFree),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub fn all() -> [RuleId; 6] {
        [
            RuleId::EpochDiscipline,
            RuleId::Determinism,
            RuleId::FloatDiscipline,
            RuleId::PanicDiscipline,
            RuleId::TaintDiscipline,
            RuleId::AllocFree,
        ]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which invariant was violated.
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes
    /// (`crates/sim/src/state.rs`).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 0-based column of the offending token.
    pub column: usize,
    /// The trimmed source line, for context and allowlist matching.
    pub snippet: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// `Some(reason)` when an allowlist entry covers this diagnostic.
    pub allowed: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.column, self.rule, self.message
        )?;
        writeln!(f, "    | {}", self.snippet)?;
        write!(f, "    = suggestion: {}", self.suggestion)?;
        if let Some(reason) = &self.allowed {
            write!(f, "\n    = allowed: {reason}")?;
        }
        Ok(())
    }
}
