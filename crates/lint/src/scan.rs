//! Token-pattern scanning utilities shared by the rules.
//!
//! The rules match patterns over *sibling runs*: the token sequence inside
//! one delimiter level. Method chains like `.partial_cmp(x).unwrap()` are
//! siblings (`partial_cmp`, `(x)`, `.`, `unwrap`, `()`), so sibling-level
//! matching plus recursion into every group reaches every pattern the
//! rules care about without needing expression parsing.

use proc_macro2::{Spacing, TokenTree};

/// Calls `f` on every sibling run in the tree: the top-level slice and,
/// recursively, the contents of every group.
pub fn for_each_sibling_run(tokens: &[TokenTree], f: &mut dyn FnMut(&[TokenTree])) {
    f(tokens);
    for t in tokens {
        if let TokenTree::Group(g) = t {
            for_each_sibling_run(g.tokens(), f);
        }
    }
}

/// Whether the token is the identifier `word`.
pub fn is_ident(t: &TokenTree, word: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.as_str() == word)
}

/// Whether the token is the punctuation `ch`.
pub fn is_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch)
}

/// A maximal multi-character operator: consecutive `Joint` puncts plus the
/// final punct (`==`, `!=`, `+=`, `->`, `..=`, ...).
#[derive(Debug)]
pub struct OpRun {
    /// The operator characters, in order.
    pub op: String,
    /// Index of the first punct in the sibling slice.
    pub start: usize,
    /// Index one past the last punct.
    pub end: usize,
}

/// Splits a sibling run into its maximal operator runs.
pub fn operator_runs(tokens: &[TokenTree]) -> Vec<OpRun> {
    let mut runs = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let TokenTree::Punct(first) = &tokens[i] else {
            i += 1;
            continue;
        };
        let start = i;
        let mut op = String::new();
        op.push(first.as_char());
        let mut spacing = first.spacing();
        let mut j = i + 1;
        while spacing == Spacing::Joint {
            match tokens.get(j) {
                Some(TokenTree::Punct(p)) => {
                    op.push(p.as_char());
                    spacing = p.spacing();
                    j += 1;
                }
                _ => break,
            }
        }
        runs.push(OpRun { op, start, end: j });
        i = j;
    }
    runs
}

/// Whether a literal's source text denotes a float (`1.0`, `1.`, `2e-3`,
/// `1f64`, `1_000.5`), as opposed to an integer, string, char, or byte
/// literal.
pub fn is_float_literal(repr: &str) -> bool {
    let first = repr.chars().next().unwrap_or(' ');
    if !first.is_ascii_digit() {
        return false; // strings, chars, prefixed literals
    }
    if repr.starts_with("0x") || repr.starts_with("0o") || repr.starts_with("0b") {
        return false;
    }
    repr.contains('.')
        || repr.ends_with("f32")
        || repr.ends_with("f64")
        || repr.contains(['e', 'E'])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_macro2::TokenStream;

    fn toks(src: &str) -> Vec<TokenTree> {
        src.parse::<TokenStream>().unwrap().tokens().to_vec()
    }

    #[test]
    fn operator_runs_split_correctly() {
        let tokens = toks("a == b && c <= d.e");
        let ops: Vec<String> = operator_runs(&tokens).into_iter().map(|r| r.op).collect();
        assert_eq!(ops, vec!["==", "&&", "<=", "."]);
    }

    #[test]
    fn float_literals_are_recognized() {
        for yes in ["1.0", "1.", "2e-3", "2E5", "1f64", "3.5f32", "1_000.5"] {
            assert!(is_float_literal(yes), "{yes} should be a float");
        }
        for no in ["1", "0xFF", "0b10", "100u32", "\"1.0\"", "'e'", "b'x'"] {
            assert!(!is_float_literal(no), "{no} should not be a float");
        }
    }

    #[test]
    fn sibling_runs_visit_nested_groups() {
        let tokens = toks("f(a, g(b))");
        let mut runs = 0usize;
        for_each_sibling_run(&tokens, &mut |_| runs += 1);
        assert_eq!(runs, 3); // top level, f's args, g's args
    }
}
