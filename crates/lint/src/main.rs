//! CLI entry point: `cargo run -p ecds-lint [-- --json results/LINT.json]`.
//!
//! Exit codes: 0 = workspace clean (allowlisted sites included), 1 = any
//! unallowlisted violation, stale or ambiguous allowlist entry,
//! unparseable file, or body coverage below the 95% floor, 2 = usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ecds_lint::{engine, report};

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    verbose: bool,
}

const USAGE: &str = "\
ecds-lint: enforce the workspace determinism/epoch/float/alloc invariants (DESIGN.md §9, §14)

USAGE: cargo run -p ecds-lint [-- OPTIONS]

OPTIONS:
    --root <DIR>    workspace root (default: walk up from the current directory)
    --json <FILE>   also write the machine-readable report (e.g. results/LINT.json)
    --verbose       list allowlisted sites with their audit reasons
    --help          show this help";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json requires a path")?)),
            "--verbose" => args.verbose = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("ecds-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| engine::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("ecds-lint: could not find the workspace root (Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };
    let result = match engine::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ecds-lint: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{}", report::human(&result, args.verbose));
    if let Some(json_path) = &args.json {
        let path = if json_path.is_absolute() {
            json_path.clone()
        } else {
            root.join(json_path)
        };
        if let Err(e) = std::fs::write(&path, report::json(&result)) {
            eprintln!("ecds-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
