//! Reporters: the human diagnostic listing and the machine-readable JSON
//! artifact (`results/LINT.json`) that tracks rule/violation counts
//! across PRs.

use std::fmt::Write as _;

use crate::diag::RuleId;
use crate::engine::RunResult;

/// Renders the human report: every unallowlisted violation in full, a
/// one-line entry per allowed site (with its audit reason when `verbose`),
/// stale allowlist entries, parse errors, and a summary line.
pub fn human(result: &RunResult, verbose: bool) -> String {
    let mut out = String::new();
    for d in result.violations() {
        let _ = writeln!(out, "{d}\n");
    }
    if verbose {
        for d in result.allowed() {
            let reason = d.allowed.as_deref().unwrap_or("");
            let _ = writeln!(
                out,
                "{}:{}:{} {} allowed: {}",
                d.file, d.line, d.column, d.rule, reason
            );
        }
    }
    for e in &result.stale_entries {
        let _ = writeln!(
            out,
            "lint.toml:{}: stale [[allow]] entry ({} {} pattern `{}`) matches no code — \
             delete it",
            e.defined_at, e.rule, e.file, e.pattern
        );
    }
    for e in &result.parse_errors {
        let _ = writeln!(out, "parse error: {e}");
    }
    let violations = result.violations().count();
    let allowed = result.allowed().count();
    let _ = write!(
        out,
        "ecds-lint: {} files scanned, {} violation{}, {} allowed, {} stale allowlist \
         entr{}, {} parse error{}",
        result.files_scanned,
        violations,
        if violations == 1 { "" } else { "s" },
        allowed,
        result.stale_entries.len(),
        if result.stale_entries.len() == 1 {
            "y"
        } else {
            "ies"
        },
        result.parse_errors.len(),
        if result.parse_errors.len() == 1 {
            ""
        } else {
            "s"
        },
    );
    out
}

/// Renders `results/LINT.json`: schema-versioned per-rule counts plus the
/// full diagnostic lists, deterministically ordered.
pub fn json(result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", result.files_scanned);
    out.push_str("  \"rules\": {\n");
    let rules = RuleId::all();
    for (i, rule) in rules.iter().enumerate() {
        let violations = result.violations().filter(|d| d.rule == *rule).count();
        let allowed = result.allowed().filter(|d| d.rule == *rule).count();
        let _ = write!(
            out,
            "    \"{}\": {{ \"violations\": {violations}, \"allowed\": {allowed} }}",
            rule.as_str()
        );
        out.push_str(if i + 1 < rules.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    write_diag_array(&mut out, "violations", result, false);
    out.push_str(",\n");
    write_diag_array(&mut out, "allowed", result, true);
    out.push_str(",\n");
    out.push_str("  \"stale_allowlist\": [");
    for (i, e) in result.stale_entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{ \"rule\": \"{}\", \"file\": \"{}\", \"pattern\": \"{}\" }}",
            e.rule,
            escape(&e.file),
            escape(&e.pattern)
        );
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"parse_errors\": {},", result.parse_errors.len());
    let _ = writeln!(out, "  \"clean\": {}", result.is_clean());
    out.push_str("}\n");
    out
}

fn write_diag_array(out: &mut String, key: &str, result: &RunResult, allowed: bool) {
    let _ = write!(out, "  \"{key}\": [");
    let mut first = true;
    for d in result
        .diagnostics
        .iter()
        .filter(|d| d.allowed.is_some() == allowed)
    {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        let _ = write!(
            out,
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"",
            d.rule,
            escape(&d.file),
            d.line,
            escape(&d.message)
        );
        if let Some(reason) = &d.allowed {
            let _ = write!(out, ", \"reason\": \"{}\"", escape(reason));
        }
        let _ = write!(out, " }}");
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push(']');
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn result_with_one_violation() -> RunResult {
        RunResult {
            files_scanned: 3,
            diagnostics: vec![Diagnostic {
                rule: RuleId::Determinism,
                file: "crates/core/src/x.rs".to_string(),
                line: 7,
                column: 4,
                snippet: "let m = HashMap::new();".to_string(),
                message: "`HashMap`: nondeterministic".to_string(),
                suggestion: "use BTreeMap".to_string(),
                allowed: None,
            }],
            stale_entries: Vec::new(),
            parse_errors: Vec::new(),
        }
    }

    #[test]
    fn human_report_lists_violation_and_summary() {
        let text = human(&result_with_one_violation(), false);
        assert!(text.contains("crates/core/src/x.rs:7:4"));
        assert!(text.contains("R2-determinism"));
        assert!(text.contains("1 violation,"));
    }

    #[test]
    fn json_report_has_counts_and_escapes() {
        let text = json(&result_with_one_violation());
        assert!(text.contains("\"R2-determinism\": { \"violations\": 1, \"allowed\": 0 }"));
        assert!(text.contains("\"clean\": false"));
        assert!(text.contains("nondeterministic"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
