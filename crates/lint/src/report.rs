//! Reporters: the human diagnostic listing and the machine-readable JSON
//! artifact (`results/LINT.json`) that tracks rule/violation counts and
//! analysis coverage across PRs.
//!
//! JSON schema 2 (this PR) adds the flow-sensitive engine's
//! accountability fields: per-rule counts for all six rules, the body
//! coverage ratio (functions whose bodies the statement parser shaped
//! vs. skipped, itemized), ambiguous allowlist entries, and the run's
//! wall time. Everything except `elapsed_ms` is byte-stable; CI diffs
//! the committed artifact with `-I '"elapsed_ms"'`.

use std::fmt::Write as _;

use crate::diag::RuleId;
use crate::engine::RunResult;

/// The `results/LINT.json` schema version this reporter emits.
pub const JSON_SCHEMA: u32 = 2;

/// Body coverage as a `"99.8"`-style string (one decimal, truncated),
/// shared by both reporters so they cannot disagree.
fn coverage_str(result: &RunResult) -> String {
    let pm = result.coverage_permille();
    format!("{}.{}", pm / 10, pm % 10)
}

/// Renders the human report: every unallowlisted violation in full, a
/// one-line entry per allowed site (with its audit reason when `verbose`),
/// stale and ambiguous allowlist entries, parse errors, skipped bodies
/// (when `verbose`), and a summary line with coverage and wall time.
pub fn human(result: &RunResult, verbose: bool) -> String {
    let mut out = String::new();
    for d in result.violations() {
        let _ = writeln!(out, "{d}\n");
    }
    if verbose {
        for d in result.allowed() {
            let reason = d.allowed.as_deref().unwrap_or("");
            let _ = writeln!(
                out,
                "{}:{}:{} {} allowed: {}",
                d.file, d.line, d.column, d.rule, reason
            );
        }
        for (file, func, line, reason) in &result.skipped_bodies {
            let _ = writeln!(
                out,
                "{file}:{line}: body of `{func}` not statement-parsed ({reason}) — \
                 flow-sensitive rules fell back to whole-body checks"
            );
        }
    }
    for e in &result.stale_entries {
        let _ = writeln!(
            out,
            "lint.toml:{}: stale [[allow]] entry ({} {} pattern `{}`) matches no code — \
             delete it",
            e.defined_at, e.rule, e.file, e.pattern
        );
    }
    for (e, n) in &result.ambiguous_entries {
        let _ = writeln!(
            out,
            "lint.toml:{}: ambiguous [[allow]] entry ({} {} pattern `{}`) matches {n} \
             diagnostics — anchor it with `line = N` or a longer pattern",
            e.defined_at, e.rule, e.file, e.pattern
        );
    }
    for e in &result.parse_errors {
        let _ = writeln!(out, "parse error: {e}");
    }
    let violations = result.violations().count();
    let allowed = result.allowed().count();
    let _ = write!(
        out,
        "ecds-lint: {} files scanned, {} violation{}, {} allowed, {} stale allowlist \
         entr{}, {} ambiguous, {} parse error{}, body coverage {}% ({}/{} parsed, min \
         {}%), {} ms",
        result.files_scanned,
        violations,
        if violations == 1 { "" } else { "s" },
        allowed,
        result.stale_entries.len(),
        if result.stale_entries.len() == 1 {
            "y"
        } else {
            "ies"
        },
        result.ambiguous_entries.len(),
        result.parse_errors.len(),
        if result.parse_errors.len() == 1 {
            ""
        } else {
            "s"
        },
        coverage_str(result),
        result.bodies_parsed,
        result.bodies_total,
        crate::engine::MIN_BODY_COVERAGE_PCT,
        result.elapsed_ms,
    );
    out
}

/// Renders `results/LINT.json` (schema 2): per-rule counts, the full
/// diagnostic lists, allowlist health, and analysis coverage,
/// deterministically ordered.
pub fn json(result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {JSON_SCHEMA},");
    let _ = writeln!(out, "  \"files_scanned\": {},", result.files_scanned);
    let _ = writeln!(out, "  \"elapsed_ms\": {},", result.elapsed_ms);
    out.push_str("  \"coverage\": {\n");
    let _ = writeln!(out, "    \"bodies_total\": {},", result.bodies_total);
    let _ = writeln!(out, "    \"bodies_parsed\": {},", result.bodies_parsed);
    let _ = writeln!(
        out,
        "    \"bodies_skipped\": {},",
        result.skipped_bodies.len()
    );
    let _ = writeln!(out, "    \"percent\": {},", coverage_str(result));
    let _ = writeln!(out, "    \"ok\": {}", result.coverage_ok());
    out.push_str("  },\n");
    out.push_str("  \"skipped_bodies\": [");
    for (i, (file, func, line, reason)) in result.skipped_bodies.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{ \"file\": \"{}\", \"function\": \"{}\", \"line\": {line}, \
             \"reason\": \"{}\" }}",
            escape(file),
            escape(func),
            escape(reason)
        );
    }
    if !result.skipped_bodies.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"rules\": {\n");
    let rules = RuleId::all();
    for (i, rule) in rules.iter().enumerate() {
        let violations = result.violations().filter(|d| d.rule == *rule).count();
        let allowed = result.allowed().filter(|d| d.rule == *rule).count();
        let _ = write!(
            out,
            "    \"{}\": {{ \"violations\": {violations}, \"allowed\": {allowed} }}",
            rule.as_str()
        );
        out.push_str(if i + 1 < rules.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    write_diag_array(&mut out, "violations", result, false);
    out.push_str(",\n");
    write_diag_array(&mut out, "allowed", result, true);
    out.push_str(",\n");
    out.push_str("  \"stale_allowlist\": [");
    for (i, e) in result.stale_entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{ \"rule\": \"{}\", \"file\": \"{}\", \"pattern\": \"{}\" }}",
            e.rule,
            escape(&e.file),
            escape(&e.pattern)
        );
    }
    out.push_str("],\n");
    out.push_str("  \"ambiguous_allowlist\": [");
    for (i, (e, n)) in result.ambiguous_entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{ \"rule\": \"{}\", \"file\": \"{}\", \"pattern\": \"{}\", \"matches\": {n} }}",
            e.rule,
            escape(&e.file),
            escape(&e.pattern)
        );
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"parse_errors\": {},", result.parse_errors.len());
    let _ = writeln!(out, "  \"clean\": {}", result.is_clean());
    out.push_str("}\n");
    out
}

fn write_diag_array(out: &mut String, key: &str, result: &RunResult, allowed: bool) {
    let _ = write!(out, "  \"{key}\": [");
    let mut first = true;
    for d in result
        .diagnostics
        .iter()
        .filter(|d| d.allowed.is_some() == allowed)
    {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        let _ = write!(
            out,
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"",
            d.rule,
            escape(&d.file),
            d.line,
            escape(&d.message)
        );
        if let Some(reason) = &d.allowed {
            let _ = write!(out, ", \"reason\": \"{}\"", escape(reason));
        }
        let _ = write!(out, " }}");
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push(']');
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn result_with_one_violation() -> RunResult {
        RunResult {
            files_scanned: 3,
            diagnostics: vec![Diagnostic {
                rule: RuleId::Determinism,
                file: "crates/core/src/x.rs".to_string(),
                line: 7,
                column: 4,
                snippet: "let m = HashMap::new();".to_string(),
                message: "`HashMap`: nondeterministic".to_string(),
                suggestion: "use BTreeMap".to_string(),
                allowed: None,
            }],
            bodies_total: 40,
            bodies_parsed: 39,
            skipped_bodies: vec![(
                "crates/core/src/x.rs".to_string(),
                "odd".to_string(),
                3,
                "unshaped macro body".to_string(),
            )],
            ..RunResult::default()
        }
    }

    #[test]
    fn human_report_lists_violation_and_summary() {
        let text = human(&result_with_one_violation(), false);
        assert!(text.contains("crates/core/src/x.rs:7:4"));
        assert!(text.contains("R2-determinism"));
        assert!(text.contains("1 violation,"));
        assert!(text.contains("body coverage 97.5%"), "{text}");
    }

    #[test]
    fn json_report_has_counts_coverage_and_escapes() {
        let text = json(&result_with_one_violation());
        assert!(text.contains("\"schema\": 2"));
        assert!(text.contains("\"R2-determinism\": { \"violations\": 1, \"allowed\": 0 }"));
        assert!(text.contains("\"R6-allocfree\": { \"violations\": 0, \"allowed\": 0 }"));
        assert!(text.contains("\"bodies_parsed\": 39"));
        assert!(text.contains("\"percent\": 97.5"));
        assert!(text.contains("\"unshaped macro body\""));
        assert!(text.contains("\"clean\": false"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn ambiguous_entries_fail_the_run_and_are_reported() {
        let mut r = result_with_one_violation();
        r.diagnostics.clear();
        r.ambiguous_entries.push((
            crate::allowlist::AllowEntry {
                rule: RuleId::PanicDiscipline,
                file: "crates/a.rs".to_string(),
                pattern: "unwrap()".to_string(),
                line: None,
                reason: "audited".to_string(),
                defined_at: 12,
            },
            2,
        ));
        assert!(!r.is_clean());
        let text = human(&r, false);
        assert!(text.contains("ambiguous [[allow]] entry"), "{text}");
        assert!(text.contains("matches 2 diagnostics"), "{text}");
        let js = json(&r);
        assert!(
            js.contains("\"ambiguous_allowlist\": [{ \"rule\": \"R4-panic\""),
            "{js}"
        );
    }

    #[test]
    fn coverage_below_the_floor_is_not_clean() {
        let mut r = RunResult {
            bodies_total: 100,
            bodies_parsed: 94,
            ..RunResult::default()
        };
        assert!(!r.coverage_ok());
        assert!(!r.is_clean());
        r.bodies_parsed = 95;
        assert!(r.coverage_ok());
        assert!(r.is_clean());
    }
}
