//! Per-rule fixture tests: each `tests/fixtures/*.rs` file is parsed as if
//! it lived at a chosen workspace path (the path drives crate/role
//! scoping) and checked against the full rule set — including the
//! flow-sensitive R1v2 pass and the interprocedural R5/R6 passes, which
//! see the fixture files as one miniature workspace. Positives must
//! produce exactly the expected diagnostics, negatives none, and the
//! allowlist machinery must excuse — and only excuse — what it names.

use ecds_lint::allowlist::Allowlist;
use ecds_lint::diag::{Diagnostic, RuleId};

/// Parses fixtures under their pretend workspace paths and runs every
/// rule over the resulting mini-workspace.
fn check_fixtures(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let texts: Vec<(String, String)> = files
        .iter()
        .map(|(fixture, rel_path)| {
            let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
            (rel_path.to_string(), text)
        })
        .collect();
    let sources: Vec<(&str, &str)> = texts
        .iter()
        .map(|(rel, text)| (rel.as_str(), text.as_str()))
        .collect();
    let result = ecds_lint::run_on_sources(&sources, &Allowlist::default())
        .unwrap_or_else(|e| panic!("parsing fixtures {files:?}: {e}"));
    result.diagnostics
}

/// Single-fixture convenience wrapper.
fn check_fixture(fixture: &str, rel_path: &str) -> Vec<Diagnostic> {
    check_fixtures(&[(fixture, rel_path)])
}

fn lines_for(diags: &[Diagnostic], rule: RuleId) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn r1_flags_missing_epoch_bumps() {
    let diags = check_fixture("r1_positive.rs", "crates/sim/src/fixture.rs");
    let r1 = lines_for(&diags, RuleId::EpochDiscipline);
    // `Ledger::clear` (marker-guarded), `Stamp::restamp` (marker-guarded
    // fingerprint rewrite), `CoreState::enqueue` (guarded by name),
    // `CoreState::restore_queue` (a checkpoint-restore path that forgets
    // the epoch), and `ShardIndex::rekey` (a shard-index mutator that
    // rewires class membership without the bump); `Ledger::push` and
    // `ShardIndex::rebuild` bump and must not appear.
    assert_eq!(r1.len(), 5, "diagnostics: {diags:#?}");
    let snippets: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == RuleId::EpochDiscipline)
        .map(|d| d.snippet.as_str())
        .collect();
    assert!(snippets.iter().any(|s| s.contains("fn clear")));
    assert!(snippets.iter().any(|s| s.contains("fn restamp")));
    assert!(snippets.iter().any(|s| s.contains("fn enqueue")));
    assert!(snippets.iter().any(|s| s.contains("fn restore_queue")));
    assert!(snippets.iter().any(|s| s.contains("fn rekey")));
    assert!(!snippets.iter().any(|s| s.contains("fn rebuild")));
}

#[test]
fn r1_accepts_bumping_private_and_test_mutators() {
    let diags = check_fixture("r1_negative.rs", "crates/sim/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::EpochDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r1v2_flags_each_escaping_exit_path() {
    let diags = check_fixture("r1v2_positive.rs", "crates/sim/src/fixture.rs");
    let r1: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::EpochDiscipline)
        .collect();
    // One per escaping exit: pop_queued's fall-through, absorb's early
    // return, apply's unbumped Swap arm, absorb_str's `?` escape. Every
    // one of these bodies *contains* a bump, so v1 accepted all four.
    assert_eq!(r1.len(), 4, "diagnostics: {r1:#?}");
    assert!(!r1.iter().any(|d| d.message.contains("never bumps")));
    let by_method = |name: &str| {
        r1.iter()
            .find(|d| d.message.contains(name))
            .unwrap_or_else(|| panic!("no diagnostic for {name}: {r1:#?}"))
    };
    assert!(by_method("pop_queued").message.contains("fall through"));
    assert!(by_method("fn absorb(").message.contains("returns without"));
    assert!(by_method("apply").message.contains("fall through"));
    assert!(by_method("absorb_str").message.contains("`?`"));
    // Anchors sit at the escaping statements, not at the signatures.
    assert!(by_method("pop_queued").snippet.contains("popped"));
    assert!(by_method("fn absorb(").snippet.contains("return false"));
}

#[test]
fn r1v2_accepts_bumps_on_every_path() {
    let diags = check_fixture("r1v2_negative.rs", "crates/sim/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::EpochDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r2_flags_hash_collections_clocks_and_entropy() {
    let diags = check_fixture("r2_positive.rs", "crates/core/src/fixture.rs");
    let r2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::Determinism)
        .collect();
    let hits = |needle: &str| r2.iter().filter(|d| d.message.contains(needle)).count();
    assert!(hits("HashMap") >= 2, "use + body: {r2:#?}");
    assert!(hits("Instant") >= 1, "diagnostics: {r2:#?}");
    assert!(hits("thread_rng") >= 1, "diagnostics: {r2:#?}");
}

#[test]
fn r2_is_scoped_to_result_affecting_crates() {
    // The same nondeterminism is fine in a crate that never touches
    // results (`bench` drives wall-clock measurements by design).
    let diags = check_fixture("r2_positive.rs", "crates/bench/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::Determinism).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r2_accepts_btree_and_test_only_hash() {
    let diags = check_fixture("r2_negative.rs", "crates/core/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::Determinism).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r2_persist_bans_pointer_widths_and_native_endian() {
    let diags = check_fixture("r2_persist.rs", "crates/persist/src/fixture.rs");
    let r2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::Determinism)
        .collect();
    let hits = |needle: &str| r2.iter().filter(|d| d.message.contains(needle)).count();
    assert_eq!(hits("`usize`"), 3, "diagnostics: {r2:#?}");
    assert_eq!(hits("to_ne_bytes"), 1, "diagnostics: {r2:#?}");
    assert_eq!(hits("from_ne_bytes"), 1, "diagnostics: {r2:#?}");
    assert_eq!(hits("SystemTime"), 1, "diagnostics: {r2:#?}");
    // The portable little-endian helper and the test region are clean.
    assert_eq!(r2.len(), 6, "diagnostics: {r2:#?}");
}

#[test]
fn r2_persist_layout_table_does_not_leak_into_other_crates() {
    // `usize` is idiomatic everywhere outside the wire format; parsing the
    // same fixture as a sim source must flag only the wall-clock read.
    let diags = check_fixture("r2_persist.rs", "crates/sim/src/fixture.rs");
    let r2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::Determinism)
        .collect();
    assert_eq!(r2.len(), 1, "diagnostics: {r2:#?}");
    assert!(r2[0].message.contains("SystemTime"));
}

#[test]
fn r3_flags_partial_cmp_chains_and_float_equality() {
    let diags = check_fixture("r3_positive.rs", "crates/pmf/src/fixture.rs");
    let r3: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::FloatDiscipline)
        .collect();
    assert_eq!(r3.len(), 3, "diagnostics: {r3:#?}");
    assert!(r3.iter().any(|d| d.snippet.contains(".unwrap()")));
    assert!(r3.iter().any(|d| d.snippet.contains(".expect(")));
    assert!(r3.iter().any(|d| d.snippet.contains("== 1.0")));
    // Suggestions must point at the approved replacement.
    assert!(r3
        .iter()
        .filter(|d| d.snippet.contains("partial_cmp"))
        .all(|d| d.suggestion.contains("total_cmp")));
}

#[test]
fn r3_accepts_total_cmp_definitions_and_test_equality() {
    let diags = check_fixture("r3_negative.rs", "crates/pmf/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::FloatDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r3_partial_cmp_chain_is_flagged_even_in_tests() {
    // NaN panics in a test are still flaky failures; the chain rule has no
    // test exemption (only the equality heuristic does).
    let diags = check_fixture("r3_positive.rs", "crates/pmf/tests/fixture.rs");
    let r3: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::FloatDiscipline)
        .collect();
    assert_eq!(r3.len(), 2, "only the two chains: {r3:#?}");
    assert!(r3.iter().all(|d| d.snippet.contains("partial_cmp")));
}

#[test]
fn r4_flags_unwrap_expect_and_panic_in_lib_code() {
    let diags = check_fixture("r4_positive.rs", "crates/sim/src/fixture.rs");
    let r4 = lines_for(&diags, RuleId::PanicDiscipline);
    assert_eq!(r4.len(), 3, "diagnostics: {diags:#?}");
}

#[test]
fn r4_is_scoped_to_library_code() {
    // The same panics in an integration test are fine…
    let diags = check_fixture("r4_positive.rs", "crates/sim/tests/fixture.rs");
    assert!(lines_for(&diags, RuleId::PanicDiscipline).is_empty());
    // …and fallbacks/test-only panics in lib code are too.
    let diags = check_fixture("r4_negative.rs", "crates/sim/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::PanicDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r5_flags_two_hop_laundering_with_the_chain() {
    let diags = check_fixtures(&[
        ("r5_result.rs", "crates/sim/src/fixture.rs"),
        ("r5_helper.rs", "crates/bench/src/noise.rs"),
    ]);
    let r5: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::TaintDiscipline)
        .collect();
    assert_eq!(r5.len(), 1, "diagnostics: {r5:#?}");
    let d = r5[0];
    assert_eq!(d.file, "crates/sim/src/fixture.rs");
    assert!(d.snippet.contains("fn schedule_step"), "{}", d.snippet);
    assert!(d.message.contains("thread_rng"), "{}", d.message);
    assert!(
        d.message
            .contains("sim::schedule_step -> bench::jitter -> bench::entropy_seed"),
        "chain missing: {}",
        d.message
    );
    // The helper crate itself is not result-affecting: no diagnostic
    // there, and `advance` (untainted) stays clean.
    assert!(diags
        .iter()
        .all(|d| d.rule != RuleId::TaintDiscipline || !d.message.contains("advance")));
}

#[test]
fn r5_does_not_fire_without_the_result_affecting_caller() {
    let diags = check_fixture("r5_helper.rs", "crates/bench/src/noise.rs");
    assert!(
        lines_for(&diags, RuleId::TaintDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r6_flags_allocation_in_a_transitive_callee() {
    let diags = check_fixture("r6_positive.rs", "crates/pmf/src/fixture.rs");
    let r6: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::AllocFree)
        .collect();
    // Two allocating lines inside `finalize`, each with the chain from
    // the certified root; `setup` (outside the closure) stays clean.
    assert_eq!(r6.len(), 2, "diagnostics: {r6:#?}");
    assert!(r6
        .iter()
        .all(|d| d.message.contains("evaluate_kernel -> finalize")));
    assert!(r6.iter().any(|d| d.message.contains("Vec::with_capacity")));
    assert!(r6.iter().any(|d| d.message.contains(".push()")));
    assert!(!r6.iter().any(|d| d.snippet.contains("vec![0.0; 64]")));
}

#[test]
fn r6_accepts_an_in_place_closure() {
    let diags = check_fixture("r6_negative.rs", "crates/pmf/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::AllocFree).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn allowlist_excuses_exactly_what_it_names() {
    let mut diags = check_fixture("r4_positive.rs", "crates/sim/src/fixture.rs");
    let toml = r#"
[[allow]]
rule = "R4-panic"
file = "crates/sim/src/fixture.rs"
pattern = 'expect("non-empty")'
reason = "fixture: audited"
"#;
    let list = Allowlist::parse(toml).unwrap();
    let outcome = list.apply(&mut diags);
    assert!(outcome.stale.is_empty());
    assert!(outcome.ambiguous.is_empty());
    let allowed: Vec<&Diagnostic> = diags.iter().filter(|d| d.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].snippet.contains("expect"));
    // The unwrap and panic! sites remain violations.
    assert_eq!(diags.iter().filter(|d| d.allowed.is_none()).count(), 2);
}

#[test]
fn allowlist_entry_matching_nothing_is_stale() {
    let mut diags = check_fixture("r4_negative.rs", "crates/sim/src/fixture.rs");
    let toml = r#"
[[allow]]
rule = "R4-panic"
file = "crates/sim/src/fixture.rs"
pattern = "some_removed_call()"
reason = "audited long ago"
"#;
    let list = Allowlist::parse(toml).unwrap();
    let outcome = list.apply(&mut diags);
    assert_eq!(outcome.stale.len(), 1);
    assert_eq!(outcome.stale[0].pattern, "some_removed_call()");
}
