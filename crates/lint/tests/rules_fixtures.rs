//! Per-rule fixture tests: each `tests/fixtures/*.rs` file is parsed as if
//! it lived at a chosen workspace path (the path drives crate/role
//! scoping) and checked against the full rule set. Positives must produce
//! exactly the expected diagnostics, negatives none, and the allowlist
//! machinery must excuse — and only excuse — what it names.

use ecds_lint::allowlist::Allowlist;
use ecds_lint::diag::{Diagnostic, RuleId};
use ecds_lint::rules;
use ecds_lint::source::SourceFile;

/// Parses a fixture under the given pretend workspace path and runs every
/// rule over it.
fn check_fixture(fixture: &str, rel_path: &str) -> Vec<Diagnostic> {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
    let file = SourceFile::parse(rel_path, &text)
        .unwrap_or_else(|e| panic!("parsing fixture {fixture}: {e}"));
    let mut out = Vec::new();
    rules::check_all(&file, &mut out);
    out
}

fn lines_for(diags: &[Diagnostic], rule: RuleId) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn r1_flags_missing_epoch_bumps() {
    let diags = check_fixture("r1_positive.rs", "crates/sim/src/fixture.rs");
    let r1 = lines_for(&diags, RuleId::EpochDiscipline);
    // `Ledger::clear` (marker-guarded), `Stamp::restamp` (marker-guarded
    // fingerprint rewrite), `CoreState::enqueue` (guarded by name),
    // `CoreState::restore_queue` (a checkpoint-restore path that forgets
    // the epoch), and `ShardIndex::rekey` (a shard-index mutator that
    // rewires class membership without the bump); `Ledger::push` and
    // `ShardIndex::rebuild` bump and must not appear.
    assert_eq!(r1.len(), 5, "diagnostics: {diags:#?}");
    let snippets: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == RuleId::EpochDiscipline)
        .map(|d| d.snippet.as_str())
        .collect();
    assert!(snippets.iter().any(|s| s.contains("fn clear")));
    assert!(snippets.iter().any(|s| s.contains("fn restamp")));
    assert!(snippets.iter().any(|s| s.contains("fn enqueue")));
    assert!(snippets.iter().any(|s| s.contains("fn restore_queue")));
    assert!(snippets.iter().any(|s| s.contains("fn rekey")));
    assert!(!snippets.iter().any(|s| s.contains("fn rebuild")));
}

#[test]
fn r1_accepts_bumping_private_and_test_mutators() {
    let diags = check_fixture("r1_negative.rs", "crates/sim/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::EpochDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r2_flags_hash_collections_clocks_and_entropy() {
    let diags = check_fixture("r2_positive.rs", "crates/core/src/fixture.rs");
    let r2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::Determinism)
        .collect();
    let hits = |needle: &str| r2.iter().filter(|d| d.message.contains(needle)).count();
    assert!(hits("HashMap") >= 2, "use + body: {r2:#?}");
    assert!(hits("Instant") >= 1, "diagnostics: {r2:#?}");
    assert!(hits("thread_rng") >= 1, "diagnostics: {r2:#?}");
}

#[test]
fn r2_is_scoped_to_result_affecting_crates() {
    // The same nondeterminism is fine in a crate that never touches
    // results (`bench` drives wall-clock measurements by design).
    let diags = check_fixture("r2_positive.rs", "crates/bench/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::Determinism).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r2_accepts_btree_and_test_only_hash() {
    let diags = check_fixture("r2_negative.rs", "crates/core/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::Determinism).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r2_persist_bans_pointer_widths_and_native_endian() {
    let diags = check_fixture("r2_persist.rs", "crates/persist/src/fixture.rs");
    let r2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::Determinism)
        .collect();
    let hits = |needle: &str| r2.iter().filter(|d| d.message.contains(needle)).count();
    assert_eq!(hits("`usize`"), 3, "diagnostics: {r2:#?}");
    assert_eq!(hits("to_ne_bytes"), 1, "diagnostics: {r2:#?}");
    assert_eq!(hits("from_ne_bytes"), 1, "diagnostics: {r2:#?}");
    assert_eq!(hits("SystemTime"), 1, "diagnostics: {r2:#?}");
    // The portable little-endian helper and the test region are clean.
    assert_eq!(r2.len(), 6, "diagnostics: {r2:#?}");
}

#[test]
fn r2_persist_layout_table_does_not_leak_into_other_crates() {
    // `usize` is idiomatic everywhere outside the wire format; parsing the
    // same fixture as a sim source must flag only the wall-clock read.
    let diags = check_fixture("r2_persist.rs", "crates/sim/src/fixture.rs");
    let r2: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::Determinism)
        .collect();
    assert_eq!(r2.len(), 1, "diagnostics: {r2:#?}");
    assert!(r2[0].message.contains("SystemTime"));
}

#[test]
fn r3_flags_partial_cmp_chains_and_float_equality() {
    let diags = check_fixture("r3_positive.rs", "crates/pmf/src/fixture.rs");
    let r3: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::FloatDiscipline)
        .collect();
    assert_eq!(r3.len(), 3, "diagnostics: {r3:#?}");
    assert!(r3.iter().any(|d| d.snippet.contains(".unwrap()")));
    assert!(r3.iter().any(|d| d.snippet.contains(".expect(")));
    assert!(r3.iter().any(|d| d.snippet.contains("== 1.0")));
    // Suggestions must point at the approved replacement.
    assert!(r3
        .iter()
        .filter(|d| d.snippet.contains("partial_cmp"))
        .all(|d| d.suggestion.contains("total_cmp")));
}

#[test]
fn r3_accepts_total_cmp_definitions_and_test_equality() {
    let diags = check_fixture("r3_negative.rs", "crates/pmf/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::FloatDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn r3_partial_cmp_chain_is_flagged_even_in_tests() {
    // NaN panics in a test are still flaky failures; the chain rule has no
    // test exemption (only the equality heuristic does).
    let diags = check_fixture("r3_positive.rs", "crates/pmf/tests/fixture.rs");
    let r3: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::FloatDiscipline)
        .collect();
    assert_eq!(r3.len(), 2, "only the two chains: {r3:#?}");
    assert!(r3.iter().all(|d| d.snippet.contains("partial_cmp")));
}

#[test]
fn r4_flags_unwrap_expect_and_panic_in_lib_code() {
    let diags = check_fixture("r4_positive.rs", "crates/sim/src/fixture.rs");
    let r4 = lines_for(&diags, RuleId::PanicDiscipline);
    assert_eq!(r4.len(), 3, "diagnostics: {diags:#?}");
}

#[test]
fn r4_is_scoped_to_library_code() {
    // The same panics in an integration test are fine…
    let diags = check_fixture("r4_positive.rs", "crates/sim/tests/fixture.rs");
    assert!(lines_for(&diags, RuleId::PanicDiscipline).is_empty());
    // …and fallbacks/test-only panics in lib code are too.
    let diags = check_fixture("r4_negative.rs", "crates/sim/src/fixture.rs");
    assert!(
        lines_for(&diags, RuleId::PanicDiscipline).is_empty(),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn allowlist_excuses_exactly_what_it_names() {
    let mut diags = check_fixture("r4_positive.rs", "crates/sim/src/fixture.rs");
    let toml = r#"
[[allow]]
rule = "R4-panic"
file = "crates/sim/src/fixture.rs"
pattern = 'expect("non-empty")'
reason = "fixture: audited"
"#;
    let list = Allowlist::parse(toml).unwrap();
    let stale = list.apply(&mut diags);
    assert!(stale.is_empty());
    let allowed: Vec<&Diagnostic> = diags.iter().filter(|d| d.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].snippet.contains("expect"));
    // The unwrap and panic! sites remain violations.
    assert_eq!(diags.iter().filter(|d| d.allowed.is_none()).count(), 2);
}

#[test]
fn allowlist_entry_matching_nothing_is_stale() {
    let mut diags = check_fixture("r4_negative.rs", "crates/sim/src/fixture.rs");
    let toml = r#"
[[allow]]
rule = "R4-panic"
file = "crates/sim/src/fixture.rs"
pattern = "some_removed_call()"
reason = "audited long ago"
"#;
    let list = Allowlist::parse(toml).unwrap();
    let stale = list.apply(&mut diags);
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].pattern, "some_removed_call()");
}
