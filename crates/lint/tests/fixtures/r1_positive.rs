//! R1 fixture: epoch-guarded types with mutators that forget the bump.

// lint: epoch-guarded
pub struct Ledger {
    entries: Vec<u64>,
    epoch: u64,
}

impl Ledger {
    /// Bumps correctly: not flagged.
    pub fn push(&mut self, v: u64) {
        self.entries.push(v);
        self.epoch += 1;
    }

    /// VIOLATION: public mutator without an epoch bump.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

pub struct CoreState {
    epoch: u64,
    queued: Vec<u64>,
}

/// `CoreState` is always guarded by name, marker or not.
impl CoreState {
    /// VIOLATION: public mutator without an epoch bump.
    pub fn enqueue(&mut self, v: u64) {
        self.queued.push(v);
    }
}
