//! R1 fixture: epoch-guarded types with mutators that forget the bump.

// lint: epoch-guarded
pub struct Ledger {
    entries: Vec<u64>,
    epoch: u64,
}

impl Ledger {
    /// Bumps correctly: not flagged.
    pub fn push(&mut self, v: u64) {
        self.entries.push(v);
        self.epoch += 1;
    }

    /// VIOLATION: public mutator without an epoch bump.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A cached-fingerprint stamp like the evaluator's `PrefixStamp`: the
/// whole point of the epoch is to version the recorded fingerprint, so a
/// `restamp` that rewrites the fingerprint without bumping is the exact
/// bug R1 exists to catch.
// lint: epoch-guarded
pub struct Stamp {
    fingerprint: Option<u64>,
    epoch: u64,
}

impl Stamp {
    /// VIOLATION: rewrites the guarded state but forgets the bump.
    pub fn restamp(&mut self, fingerprint: Option<u64>) {
        self.fingerprint = fingerprint;
    }

    /// Read-only methods need no bump.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }
}

pub struct CoreState {
    epoch: u64,
    queued: Vec<u64>,
}

/// `CoreState` is always guarded by name, marker or not.
impl CoreState {
    /// VIOLATION: public mutator without an epoch bump.
    pub fn enqueue(&mut self, v: u64) {
        self.queued.push(v);
    }

    /// VIOLATION: an in-place checkpoint-restore path that rewrites the
    /// guarded queue but forgets the epoch. A restored core serving cached
    /// prefixes stamped before the restore is exactly the stale-cache bug
    /// R1 exists to catch — restore must either bump or go through an
    /// associated constructor that decodes the saved epoch explicitly.
    pub fn restore_queue(&mut self, queued: Vec<u64>) {
        self.queued = queued;
    }
}

/// A shard index over (node, prefix-identity) equivalence classes like the
/// evaluator's: membership is valid only for the epoch it was observed at,
/// so any mutator that rewires a class chain without bumping leaves the
/// index advertising stale classes — reads would then serve estimates for
/// a partition the cores have already left.
// lint: epoch-guarded
pub struct ShardIndex {
    class_of: Vec<u32>,
    epoch: u64,
}

impl ShardIndex {
    /// Bumps correctly: not flagged.
    pub fn rebuild(&mut self, class_of: Vec<u32>) {
        self.class_of = class_of;
        self.epoch += 1;
    }

    /// VIOLATION: rekeys a core's class without the epoch bump — the
    /// stale-index bug R1 exists to catch on the sharded decision path.
    pub fn rekey(&mut self, core: usize, class: u32) {
        self.class_of[core] = class;
    }
}
