//! R6 fixture: a certified kernel whose whole closure works in place —
//! the rule must accept it, including the slice-only helpers.

/// The certified entry point.
// lint: alloc-free
pub fn evaluate_kernel(out_buf: &mut [f64], weights: &[f64]) {
    for (o, w) in out_buf.iter_mut().zip(weights) {
        *o += scale(*w);
    }
    normalize(out_buf);
}

/// In-place arithmetic only.
fn scale(w: f64) -> f64 {
    w * 0.5
}

/// Writes through the borrowed slice; nothing grows.
fn normalize(out_buf: &mut [f64]) {
    let total: f64 = out_buf.iter().sum();
    if total > 0.0 {
        for v in out_buf.iter_mut() {
            *v /= total;
        }
    }
}

/// Unmarked code allocates freely.
pub fn warm_up(n: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    v.resize(n, 0.0);
    v
}
