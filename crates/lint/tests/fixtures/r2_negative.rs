//! R2 fixture: deterministic code plus test-only exemptions.

use std::collections::BTreeMap;

/// Ordered maps iterate deterministically.
pub fn tally(events: &[u32]) -> BTreeMap<u32, usize> {
    let mut out = BTreeMap::new();
    for e in events {
        *out.entry(*e).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    /// Hash iteration order never reaches a result in test-only code.
    #[test]
    fn hashmap_is_fine_here() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
