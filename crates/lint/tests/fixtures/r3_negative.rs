//! R3 fixture: approved float ordering and out-of-scope comparisons.

use std::cmp::Ordering;

/// `total_cmp` is the approved order.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    (0..xs.len()).max_by(|&a, &b| xs[a].total_cmp(&xs[b]))
}

/// Defining `partial_cmp` is not calling it.
pub struct Wrapped(pub u32);

impl Wrapped {
    pub fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.cmp(&other.0))
    }
}

/// Integer equality is untouched.
pub fn is_three(x: u32) -> bool {
    x == 3
}

#[cfg(test)]
mod tests {
    /// Exact float assertions are idiomatic in tests.
    #[test]
    fn exact_in_tests() {
        let x = 0.5;
        assert!(x * 2.0 == 1.0);
    }
}
