//! R3 fixture: NaN-unsafe float comparison idioms.

/// VIOLATION: `partial_cmp(..).unwrap()` panics on NaN.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    (0..xs.len()).max_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap())
}

/// VIOLATION: same chain through `expect`.
pub fn sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
}

/// VIOLATION: float equality against a non-zero literal is a tolerance
/// check in disguise.
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}
