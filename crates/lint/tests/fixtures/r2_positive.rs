//! R2 fixture: nondeterminism sources in a result-affecting crate.

use std::collections::HashMap;
use std::time::Instant;

/// VIOLATION (HashMap in signature) on top of the `use` violations above.
pub fn tally(events: &[u32]) -> HashMap<u32, usize> {
    let mut out = HashMap::new();
    for e in events {
        *out.entry(*e).or_insert(0) += 1;
    }
    out
}

/// VIOLATION: wall clock in result-affecting code.
pub fn stamp() -> u128 {
    Instant::now().elapsed().as_nanos()
}

/// VIOLATION: OS entropy.
pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
