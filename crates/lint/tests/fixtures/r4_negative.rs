//! R4 fixture: non-panicking fallbacks and test-only panics.

/// `unwrap_or` family does not panic.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

/// Propagating with `?` is the library-code idiom.
pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    let n: u32 = s.trim().parse()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    /// Tests may unwrap and panic freely.
    #[test]
    fn unwrap_in_tests() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
        if xs.is_empty() {
            panic!("impossible");
        }
    }
}
