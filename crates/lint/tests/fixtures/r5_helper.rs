//! R5 fixture, helper side: a utility crate outside R2's scope whose
//! innards read OS entropy. Fine on its own (bench code measures wall
//! clocks by design); poisonous once result-affecting code calls in.

/// First hop of the laundering chain.
pub fn jitter(world: &mut u64) {
    *world ^= entropy_seed();
}

/// Second hop: the actual R2-banned construct.
pub fn entropy_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
