//! R6 fixture: a certified alloc-free kernel whose *transitive callee*
//! allocates. The direct body is clean — the violation only falls out of
//! the call-graph closure.

/// The certified entry point: no allocation in its own body.
// lint: alloc-free
pub fn evaluate_kernel(out_buf: &mut [f64], weights: &[f64]) {
    for (o, w) in out_buf.iter_mut().zip(weights) {
        *o += accumulate(*w);
    }
    finalize(out_buf);
}

/// First hop: still clean.
fn accumulate(w: f64) -> f64 {
    w * 0.5
}

/// VIOLATION: second hop pushes into a fresh Vec on the hot path.
fn finalize(out_buf: &mut [f64]) {
    let mut staged = Vec::with_capacity(out_buf.len());
    for v in out_buf.iter() {
        staged.push(*v);
    }
    out_buf.copy_from_slice(&staged);
}

/// Not flagged: outside the certified closure, allocation is fine.
pub fn setup() -> Vec<f64> {
    vec![0.0; 64]
}
