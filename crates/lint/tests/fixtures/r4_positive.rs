//! R4 fixture: unaudited panics in library code.

/// VIOLATION: bare unwrap.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

/// VIOLATION: expect is still a panic.
pub fn last(xs: &[u32]) -> u32 {
    *xs.last().expect("non-empty")
}

/// VIOLATION: explicit panic!.
pub fn refuse() {
    panic!("not implemented");
}
