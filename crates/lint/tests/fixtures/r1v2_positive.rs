//! R1v2 fixture: branchy mutators whose bump exists but does not cover
//! every exit path. v1 of the rule (bump-anywhere) accepted all of these;
//! the flow-sensitive CFG pass must flag exactly the escaping exits.

pub struct CoreState {
    epoch: u64,
    queued: Vec<u64>,
    executing: Option<u64>,
}

impl CoreState {
    /// VIOLATION (fall-through): bumps only when the pop succeeded, so
    /// the empty-queue path reaches the trailing expression unbumped.
    /// Sound in reality (nothing mutated), but the rule is a must-
    /// analysis — this exact shape is audited in the real `pop_queued`.
    pub fn pop_queued(&mut self) -> Option<u64> {
        let popped = self.queued.pop();
        if popped.is_some() {
            self.executing = popped;
            self.epoch += 1;
        }
        popped
    }

    /// VIOLATION (early return): the guard path returns before any bump,
    /// yet a caller cannot tell it apart from the mutating path.
    pub fn absorb(&mut self, v: u64) -> bool {
        if v == 0 {
            return false;
        }
        self.queued.push(v);
        self.epoch += 1;
        true
    }

    /// VIOLATION (unbumped match arm): two arms mutate and bump, the
    /// third mutates without bumping.
    pub fn apply(&mut self, op: Op) {
        match op {
            Op::Push(v) => {
                self.queued.push(v);
                self.epoch += 1;
            }
            Op::Clear => {
                self.queued.clear();
                self.epoch += 1;
            }
            Op::Swap(v) => {
                self.executing = Some(v);
            }
        }
    }

    /// VIOLATION (`?` escape): the fallible parse may propagate out
    /// before the mutation is stamped.
    pub fn absorb_str(&mut self, s: &str) -> Result<(), std::num::ParseIntError> {
        let v: u64 = s.parse()?;
        self.queued.push(v);
        self.epoch += 1;
        Ok(())
    }
}

/// Operations for the match-arm case.
pub enum Op {
    /// Enqueue a value.
    Push(u64),
    /// Drop the queue.
    Clear,
    /// Replace the executing slot.
    Swap(u64),
}
