//! R5 fixture, result-affecting side: simulation code that launders an
//! R2-banned construct through a helper crate (`r5_helper.rs`, parsed as
//! a `crates/bench` source). R2 sees nothing here — no banned identifier
//! appears — but the call graph reaches `thread_rng` two hops away.

/// VIOLATION: reaches `bench::jitter -> bench::entropy_seed ->
/// thread_rng` through the call graph.
pub fn schedule_step(world: &mut u64) {
    jitter(world);
    *world += 1;
}

/// Not flagged: calls nothing tainted.
pub fn advance(world: &mut u64) {
    *world = world.wrapping_mul(6364136223846793005).wrapping_add(1);
}
