//! R1 fixture: everything here is fine.

// lint: epoch-guarded
pub struct Ledger {
    entries: Vec<u64>,
    epoch: u64,
}

impl Ledger {
    /// Unconditional bump.
    pub fn push(&mut self, v: u64) {
        self.entries.push(v);
        self.epoch += 1;
    }

    /// A bump on every exit path satisfies R1v2, branches included.
    pub fn pop(&mut self) -> Option<u64> {
        let out = self.entries.pop();
        if out.is_some() {
            self.epoch += 1;
        } else {
            self.epoch += 1;
        }
        out
    }

    /// Private mutators are the type's own business.
    fn rewrite(&mut self) {
        self.entries.clear();
    }

    /// Read-only methods need no bump.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A cached-fingerprint stamp like the evaluator's `PrefixStamp`, bumping
/// on every restamp: fine.
// lint: epoch-guarded
pub struct Stamp {
    fingerprint: Option<u64>,
    epoch: u64,
}

impl Stamp {
    pub fn restamp(&mut self, fingerprint: Option<u64>) {
        self.fingerprint = fingerprint;
        self.epoch += 1;
    }
}

/// The checkpoint-restore constructor pattern: associated functions carry
/// no `&mut self`, so rebuilding a guarded value from decoded parts —
/// including the *saved* epoch — is out of R1's scope by construction.
/// This is the shape `CoreState::from_checkpoint_parts` uses.
impl Stamp {
    pub fn from_checkpoint_parts(fingerprint: Option<u64>, epoch: u64) -> Self {
        Self { fingerprint, epoch }
    }
}

/// Unmarked types are out of scope entirely.
pub struct Scratch {
    data: Vec<u64>,
}

impl Scratch {
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::Ledger;

    impl Ledger {
        /// Test-only helpers are exempt.
        pub fn reset_for_test(&mut self) {
            self.entries.clear();
        }
    }
}
