//! R1v2 fixture: branchy mutators that bump on *every* exit path — the
//! flow-sensitive pass must accept all of them.

pub struct CoreState {
    epoch: u64,
    queued: Vec<u64>,
    executing: Option<u64>,
}

impl CoreState {
    /// Early return, but both paths bump.
    pub fn absorb(&mut self, v: u64) -> bool {
        if v == 0 {
            self.epoch += 1;
            return false;
        }
        self.queued.push(v);
        self.epoch += 1;
        true
    }

    /// Every match arm bumps before falling through.
    pub fn apply(&mut self, op: Op) {
        match op {
            Op::Push(v) => {
                self.queued.push(v);
                self.epoch += 1;
            }
            Op::Clear => {
                self.queued.clear();
                self.epoch += 1;
            }
        }
    }

    /// The bump precedes the fallible step, so the `?` escape carries it.
    pub fn absorb_str(&mut self, s: &str) -> Result<(), std::num::ParseIntError> {
        self.epoch += 1;
        let v: u64 = s.parse()?;
        self.queued.push(v);
        Ok(())
    }

    /// A loop that always runs its bump before any break.
    pub fn drain(&mut self) -> u64 {
        let mut count = 0;
        self.epoch += 1;
        loop {
            if self.queued.pop().is_none() {
                break;
            }
            count += 1;
        }
        self.executing = None;
        count
    }
}

/// Operations for the match-arm case.
pub enum Op {
    /// Enqueue a value.
    Push(u64),
    /// Drop the queue.
    Clear,
}
