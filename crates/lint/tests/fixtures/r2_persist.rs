//! R2 fixture for the checkpoint codec crate: the wire format must be
//! platform-independent, so pointer-width integers and native-endian
//! conversions are banned alongside the usual wall-clock reads.

/// VIOLATION (x2): `usize` in the signature, `to_ne_bytes` in the body.
pub fn put_len(buf: &mut Vec<u8>, len: usize) {
    buf.extend_from_slice(&len.to_ne_bytes());
}

/// VIOLATION (x3): `usize` return width (twice) decoded with
/// `from_ne_bytes`.
pub fn read_len(bytes: [u8; 8]) -> usize {
    usize::from_ne_bytes(bytes)
}

/// VIOLATION: checkpoints must never observe the OS clock.
pub fn stamp_header(buf: &mut Vec<u8>) {
    let _now = std::time::SystemTime::now();
    buf.push(0);
}

/// Fine: explicit fixed-width little-endian encoding.
pub fn put_len_portable(buf: &mut Vec<u8>, len: u64) {
    buf.extend_from_slice(&len.to_le_bytes());
}

#[cfg(test)]
mod tests {
    /// Test regions keep their pointer widths.
    pub fn index_math(n: usize) -> usize {
        n / 2
    }
}
