//! Property tests for the flow-sensitive backbone: arbitrary statement
//! soup must lex, parse, and lower to a well-formed CFG without panics,
//! and the dataflow must honour its two structural contracts — a fact
//! generated everywhere is never reported missing, and every statement
//! is either reachable from entry or explicitly listed as unreachable.
//!
//! The generator is opcode-driven (the proptest stand-in has no
//! recursive strategies): a byte script deterministically expands into
//! nested ifs, matches, loops, labeled blocks, let-else, `?`, and
//! opaque leaves like closures, so shrinking a failing script shrinks
//! the program.

use ecds_lint::cfg::{Cfg, EdgeKind, NodeKind, ENTRY, EXIT};
use proptest::prelude::*;

/// Expands an opcode script into a statement block. Consumes one opcode
/// per decision; an exhausted script ends the block, so every script is
/// finite and total.
fn emit_block(ops: &mut std::slice::Iter<'_, u8>, depth: usize, out: &mut String) {
    let n_stmts = match ops.next() {
        Some(&op) => (op % 4) as usize + 1,
        None => return,
    };
    for _ in 0..n_stmts {
        let Some(&op) = ops.next() else { return };
        let kind = if depth >= 3 { op % 8 } else { op % 16 };
        match kind {
            0 => out.push_str("self.epoch += 1;\n"),
            1 => out.push_str("let x = helper(a, b);\n"),
            2 => out.push_str("let v = fallible()?;\n"),
            3 => out.push_str("return;\n"),
            4 => out.push_str("break;\n"),
            5 => out.push_str("continue;\n"),
            6 => out.push_str("let f = |q: u64| q + 1;\n"),
            7 => out.push_str("unsafe { core::hint::black_box(0) };\n"),
            8 => {
                out.push_str("if a > b {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("} else {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("}\n");
            }
            9 => {
                out.push_str("if a == b {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("}\n");
            }
            10 => {
                out.push_str("match opt {\nSome(q) => {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("}\nNone => {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("}\n}\n");
            }
            11 => {
                out.push_str("while a < b {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("}\n");
            }
            12 => {
                out.push_str("loop {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("break;\n}\n");
            }
            13 => {
                out.push_str("for i in 0..a {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("}\n");
            }
            14 => {
                out.push_str("'blk: {\n");
                emit_block(ops, depth + 1, out);
                out.push_str("}\n");
            }
            _ => {
                out.push_str("let Some(q) = opt else {\nreturn;\n};\n");
            }
        }
    }
}

/// Parses the generated body through the same pipeline the engine uses
/// and returns the lowered CFG.
fn cfg_for_script(script: &[u8]) -> Cfg {
    let mut body = String::new();
    emit_block(&mut script.iter(), 0, &mut body);
    let src = format!("pub fn generated(a: u64, b: u64, opt: Option<u64>) {{\n{body}}}\n");
    // Everything the generator emits is lexically valid Rust, so a lex or
    // parse failure is itself a bug worth failing the property over.
    let file = syn::parse_file(&src)
        .unwrap_or_else(|e| panic!("generated source failed to parse: {e}\n{src}"));
    let syn::Item::Fn(f) = &file.items[0] else {
        panic!("expected a function item");
    };
    let body_tokens = f.body.as_ref().expect("generated fn has a body");
    let block = syn::body::parse_block(body_tokens.tokens(), f.span)
        .unwrap_or_else(|e| panic!("body parse failed: {e}\n{src}"));
    Cfg::build(&block)
}

fn arb_script() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=250, 0..96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lex → parse → lower is total: no panics, and the CFG's edges only
    /// reference real nodes, with the synthetic endpoints in place.
    #[test]
    fn lowering_is_total_and_well_formed(script in arb_script()) {
        let cfg = cfg_for_script(&script);
        prop_assert!(cfg.nodes.len() >= 2);
        prop_assert_eq!(cfg.nodes[ENTRY].kind, NodeKind::Entry);
        prop_assert_eq!(cfg.nodes[EXIT].kind, NodeKind::Exit);
        for e in &cfg.edges {
            prop_assert!(e.from < cfg.nodes.len());
            prop_assert!(e.to < cfg.nodes.len());
        }
    }

    /// The must-analysis contract: a fact that every node generates can
    /// never be reported missing on any exit path.
    #[test]
    fn all_generating_bodies_have_no_missed_exits(script in arb_script()) {
        let cfg = cfg_for_script(&script);
        let gen = vec![true; cfg.nodes.len()];
        prop_assert!(cfg.missed_exits(&gen).is_empty());
    }

    /// Every reported miss sits on a real edge into the exit node, with
    /// a matching early/sequential kind — the rule layer anchors its
    /// diagnostics on this.
    #[test]
    fn missed_exits_are_anchored_on_exit_edges(script in arb_script()) {
        let cfg = cfg_for_script(&script);
        let gen = vec![false; cfg.nodes.len()];
        for miss in cfg.missed_exits(&gen) {
            prop_assert!(miss.node < cfg.nodes.len());
            prop_assert!(
                cfg.edges.iter().any(|e| e.from == miss.node
                    && e.to == EXIT
                    && e.kind == miss.kind),
                "miss at node {} ({:?}) has no matching exit edge",
                miss.node, miss.kind
            );
        }
    }

    /// Every statement is accounted for: reachable from entry, or
    /// surfaced by `unreachable()` — nothing silently disappears.
    #[test]
    fn every_statement_is_reachable_or_flagged(script in arb_script()) {
        let cfg = cfg_for_script(&script);
        let mut reached = vec![false; cfg.nodes.len()];
        reached[ENTRY] = true;
        let mut work = vec![ENTRY];
        while let Some(n) = work.pop() {
            for e in cfg.edges.iter().filter(|e| e.from == n) {
                if !reached[e.to] {
                    reached[e.to] = true;
                    work.push(e.to);
                }
            }
        }
        let flagged = cfg.unreachable();
        for (i, node) in cfg.nodes.iter().enumerate() {
            if matches!(node.kind, NodeKind::Entry | NodeKind::Exit | NodeKind::Join) {
                continue;
            }
            prop_assert_eq!(
                !reached[i],
                flagged.contains(&i),
                "node {} ({:?}) reachability and unreachable() disagree",
                i, node.kind
            );
        }
    }

    /// `?` propagation is modelled with early edges: a body whose only
    /// bump comes after a `?` must report an Early miss.
    #[test]
    fn question_marks_produce_early_exit_edges(prefix in arb_script()) {
        let mut body = String::new();
        emit_block(&mut prefix.iter(), 1, &mut body);
        let src = format!(
            "pub fn generated(a: u64, b: u64, opt: Option<u64>) {{\n{body}\
             let v = fallible()?;\nself.epoch += 1;\n}}\n"
        );
        let file = syn::parse_file(&src).expect("parses");
        let syn::Item::Fn(f) = &file.items[0] else { panic!("fn item") };
        let block = syn::body::parse_block(f.body.as_ref().unwrap().tokens(), f.span)
            .expect("body parses");
        let cfg = Cfg::build(&block);
        prop_assert!(
            cfg.edges.iter().any(|e| e.kind == EdgeKind::Early && e.to == EXIT),
            "no early exit edge despite a `?` in the body:\n{src}"
        );
    }
}
