//! Mutation checks: the lint must turn red when the invariants it
//! certifies are actually broken in the *real* sources. Each test loads
//! a production file, applies a targeted mutation in memory (deleting an
//! epoch bump, injecting an allocation into a certified callee), reruns
//! the rules, and asserts a fresh, unallowlisted diagnostic appears.
//! This is the difference between "the linter runs" and "the linter
//! protects": a rule that cannot catch its own motivating mutation is
//! dead weight.

use std::path::Path;

use ecds_lint::allowlist::Allowlist;
use ecds_lint::diag::{Diagnostic, RuleId};
use ecds_lint::model::Workspace;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn read_source(rel: &str) -> String {
    let path = workspace_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Runs the full rule set over in-memory sources with no allowlist and
/// returns the diagnostics for one rule as (line, message) pairs.
fn rule_findings(sources: &[(&str, &str)], rule: RuleId) -> Vec<(usize, String)> {
    let result = ecds_lint::run_on_sources(sources, &Allowlist::default()).expect("sources parse");
    result
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.message.clone()))
        .collect()
}

/// The real allowlist, narrowed to entries for one file (so entries for
/// unrelated files don't show up as stale in a single-file run).
fn real_allowlist_for(rel: &str) -> Allowlist {
    let text = read_source("lint.toml");
    let full = Allowlist::parse(&text).expect("lint.toml parses");
    Allowlist {
        entries: full.entries.into_iter().filter(|e| e.file == rel).collect(),
    }
}

#[test]
fn deleting_any_epoch_bump_in_state_rs_turns_the_lint_red() {
    const REL: &str = "crates/sim/src/state.rs";
    let pristine = read_source(REL);
    let bump = "self.epoch += 1;";
    let occurrences: Vec<usize> = pristine.match_indices(bump).map(|(byte, _)| byte).collect();
    assert!(
        occurrences.len() >= 4,
        "state.rs should have at least the enqueue/start/complete/pop_queued bumps, \
         found {}",
        occurrences.len()
    );

    let baseline = rule_findings(&[(REL, &pristine)], RuleId::EpochDiscipline);
    let allowlist = real_allowlist_for(REL);

    for &byte in &occurrences {
        let mutated = format!("{}{}", &pristine[..byte], &pristine[byte + bump.len()..]);
        let mutated_findings = rule_findings(&[(REL, &mutated)], RuleId::EpochDiscipline);
        let fresh: Vec<&(usize, String)> = mutated_findings
            .iter()
            .filter(|f| !baseline.contains(f))
            .collect();
        assert!(
            !fresh.is_empty(),
            "deleting the bump at byte {byte} produced no new R1 diagnostic; \
             baseline {baseline:#?}, mutated {mutated_findings:#?}"
        );

        // And the real lint.toml cannot excuse the mutation: at least one
        // R1 violation survives allowlisting, so CI goes red.
        let result = ecds_lint::run_on_sources(&[(REL, &mutated)], &allowlist)
            .expect("mutated source parses");
        let unallowed: Vec<&Diagnostic> = result
            .violations()
            .filter(|d| d.rule == RuleId::EpochDiscipline)
            .collect();
        assert!(
            !unallowed.is_empty(),
            "the allowlist excused the deleted bump at byte {byte}: {:#?}",
            result.diagnostics
        );
    }
}

#[test]
fn injecting_a_push_into_an_evaluate_all_into_callee_turns_the_lint_red() {
    const REL: &str = "crates/core/src/estimate.rs";
    let pristine = read_source(REL);

    let ws = Workspace::from_sources(&[(REL, &pristine)]).expect("estimate.rs parses");
    let root = ws
        .fns
        .iter()
        .position(|f| f.name == "evaluate_all_into")
        .expect("evaluate_all_into exists");
    assert!(
        ws.fns[root].alloc_free_root,
        "evaluate_all_into must carry the `// lint: alloc-free` marker"
    );
    // Pick a real transitive callee with a parsed body to mutate.
    let callee = *ws.callees[root]
        .iter()
        .find(|&&c| c != root && ws.fns[c].block.is_some())
        .expect("evaluate_all_into has in-file callees");
    let callee_name = ws.fns[callee].name.clone();

    // Splice an allocation just inside the callee's body: locate the
    // signature line, then the opening brace that follows it.
    let sig_byte: usize = pristine
        .lines()
        .take(ws.fns[callee].line - 1)
        .map(|l| l.len() + 1)
        .sum();
    let brace = pristine[sig_byte..]
        .find('{')
        .map(|i| sig_byte + i)
        .expect("callee has a body brace");
    let probe = " let mut __probe: Vec<u64> = Vec::new(); __probe.push(1);";
    let mutated = format!("{}{{{probe}{}", &pristine[..brace], &pristine[brace + 1..]);

    let baseline = rule_findings(&[(REL, &pristine)], RuleId::AllocFree);
    let mutated_findings = rule_findings(&[(REL, &mutated)], RuleId::AllocFree);
    let fresh: Vec<&(usize, String)> = mutated_findings
        .iter()
        .filter(|f| !baseline.contains(f))
        .collect();
    assert!(
        fresh
            .iter()
            .any(|(_, msg)| msg.contains("alloc-free closure")),
        "pushing inside `{callee_name}` produced no new R6 diagnostic; \
         baseline {baseline:#?}, mutated {mutated_findings:#?}"
    );

    // The real lint.toml cannot excuse the probe either.
    let allowlist = real_allowlist_for(REL);
    let result =
        ecds_lint::run_on_sources(&[(REL, &mutated)], &allowlist).expect("mutated source parses");
    assert!(
        result
            .violations()
            .any(|d| d.rule == RuleId::AllocFree && d.snippet.contains("__probe")),
        "the allowlist excused the injected allocation: {:#?}",
        result.diagnostics
    );
}

#[test]
fn laundering_thread_rng_through_a_helper_crate_turns_the_lint_red() {
    // A synthetic but realistically-shaped pair: result-affecting engine
    // code calling a helper crate whose innards read OS entropy. Neither
    // file contains a banned identifier visible to R2 from the sim side.
    let engine_src = "\
pub fn choose_candidate(scores: &mut [f64]) -> usize {\n\
    tie_break(scores)\n\
}\n";
    let helper_src = "\
pub fn tie_break(scores: &mut [f64]) -> usize {\n\
    let salt = entropy();\n\
    (salt as usize) % scores.len().max(1)\n\
}\n\
fn entropy() -> u64 {\n\
    rand::thread_rng().next_u64()\n\
}\n";
    let result = ecds_lint::run_on_sources(
        &[
            ("crates/core/src/choose.rs", engine_src),
            ("crates/bench/src/salt.rs", helper_src),
        ],
        &Allowlist::default(),
    )
    .expect("sources parse");
    let r5: Vec<&Diagnostic> = result
        .violations()
        .filter(|d| d.rule == RuleId::TaintDiscipline)
        .collect();
    assert_eq!(r5.len(), 1, "{:#?}", result.diagnostics);
    assert!(r5[0].message.contains("thread_rng"));
    assert!(
        r5[0]
            .message
            .contains("core::choose_candidate -> bench::tie_break -> bench::entropy"),
        "{}",
        r5[0].message
    );
    // Removing the laundering call chain clears the finding.
    let clean = ecds_lint::run_on_sources(
        &[("crates/core/src/choose.rs", engine_src)],
        &Allowlist::default(),
    )
    .expect("sources parse");
    assert!(clean
        .violations()
        .all(|d| d.rule != RuleId::TaintDiscipline));
}
