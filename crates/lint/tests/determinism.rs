//! The lint report itself must honour the determinism discipline it
//! enforces: feeding the same files in any order must produce
//! byte-identical output. `results/LINT.json` is a committed artifact
//! that CI diffs, so even a reordered diagnostic would show up as noise
//! in every PR that touches an unrelated file.

use ecds_lint::allowlist::Allowlist;
use ecds_lint::report;

/// A small workspace exercising every rule at least once, so the sort
/// has real multi-rule, multi-file, multi-line work to do.
fn sources() -> Vec<(&'static str, String)> {
    let fixtures = [
        ("crates/sim/src/fixture.rs", "r5_result.rs"),
        ("crates/bench/src/fixture.rs", "r5_helper.rs"),
        ("crates/pmf/src/fixture_a.rs", "r6_positive.rs"),
        ("crates/core/src/fixture_b.rs", "r1v2_positive.rs"),
        ("crates/workload/src/fixture_c.rs", "r2_positive.rs"),
    ];
    fixtures
        .iter()
        .map(|(rel, name)| {
            let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
            (*rel, std::fs::read_to_string(&path).expect(name))
        })
        .collect()
}

fn json_for(order: &[(&str, String)]) -> String {
    let refs: Vec<(&str, &str)> = order.iter().map(|(r, t)| (*r, t.as_str())).collect();
    let mut result =
        ecds_lint::run_on_sources(&refs, &Allowlist::default()).expect("fixtures parse");
    // Wall time is the one intentionally non-reproducible field; CI diffs
    // LINT.json with it masked, so the byte-equality check masks it too.
    result.elapsed_ms = 0;
    report::json(&result)
}

#[test]
fn shuffled_file_lists_produce_byte_identical_reports() {
    let base = sources();
    let forward = json_for(&base);
    assert!(
        forward.contains("\"violations\""),
        "fixture set produced no report body:\n{forward}"
    );

    // Reversed, rotated, and interleaved orders all collapse to the same
    // bytes once the engine sorts by (file, line, column, rule).
    let mut reversed = base.clone();
    reversed.reverse();
    let mut rotated = base.clone();
    rotated.rotate_left(2);
    let mut interleaved = base.clone();
    interleaved.swap(0, 3);
    interleaved.swap(1, 4);

    for (label, order) in [
        ("reversed", reversed),
        ("rotated", rotated),
        ("interleaved", interleaved),
    ] {
        let got = json_for(&order);
        assert_eq!(forward, got, "{label} file order changed the report bytes");
    }
}

#[test]
fn human_report_is_order_independent_too() {
    let base = sources();
    let render = |order: &[(&str, String)]| {
        let refs: Vec<(&str, &str)> = order.iter().map(|(r, t)| (*r, t.as_str())).collect();
        let mut result =
            ecds_lint::run_on_sources(&refs, &Allowlist::default()).expect("fixtures parse");
        result.elapsed_ms = 0;
        report::human(&result, true)
    };
    let forward = render(&base);
    let mut reversed = base.clone();
    reversed.reverse();
    assert_eq!(forward, render(&reversed));
}
