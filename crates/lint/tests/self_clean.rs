//! The workspace must pass its own lint: zero unallowlisted violations,
//! zero stale or ambiguous allowlist entries, zero parse errors, and at
//! least 95% of function bodies analyzed flow-sensitively. This is the
//! test that turns DESIGN.md §9/§14 from prose into a gate —
//! reintroducing a `HashMap` into `crates/core`, deleting an epoch bump
//! on any exit path of `crates/sim/src/state.rs`, allocating inside a
//! `// lint: alloc-free` closure, or letting a `lint.toml` entry go
//! stale or ambiguous fails `cargo test`.

use std::path::Path;

use ecds_lint::engine;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_is_lint_clean() {
    let result = engine::run_workspace(&workspace_root()).expect("lint run");
    let violations: Vec<String> = result.violations().map(|d| d.to_string()).collect();
    assert!(
        violations.is_empty(),
        "unallowlisted violations:\n{}",
        violations.join("\n")
    );
    assert!(
        result.stale_entries.is_empty(),
        "stale lint.toml entries: {:#?}",
        result.stale_entries
    );
    assert!(
        result.parse_errors.is_empty(),
        "parse errors: {:#?}",
        result.parse_errors
    );
    assert!(
        result.ambiguous_entries.is_empty(),
        "ambiguous lint.toml entries (pin with `line = N`): {:#?}",
        result.ambiguous_entries
    );
    assert!(
        result.coverage_ok(),
        "body coverage {}‰ below the 95% floor; skipped: {:#?}",
        result.coverage_permille(),
        result.skipped_bodies
    );
    assert!(result.is_clean());
    // The scan actually covered the workspace (118 files at the time of
    // writing; the floor guards against discovery silently breaking).
    assert!(
        result.files_scanned >= 100,
        "only {} files scanned — discovery is broken",
        result.files_scanned
    );
}

#[test]
fn every_allowlist_entry_is_exercised() {
    // `apply` already reports stale entries; this asserts the complement —
    // each entry excuses at least one diagnostic, so the allowed count is
    // at least the entry count (entries may cover several sites).
    let root = workspace_root();
    let result = engine::run_workspace(&root).expect("lint run");
    let allowlist_len = std::fs::read_to_string(root.join("lint.toml"))
        .map(|t| {
            ecds_lint::Allowlist::parse(&t)
                .expect("lint.toml parses")
                .entries
                .len()
        })
        .unwrap_or(0);
    assert!(
        result.allowed().count() >= allowlist_len,
        "{} entries but only {} allowed diagnostics",
        allowlist_len,
        result.allowed().count()
    );
}
