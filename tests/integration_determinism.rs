//! End-to-end determinism: the entire study — cluster generation, pmf
//! tables, traces, scheduling, simulation, energy accounting — must
//! reproduce bit-for-bit from one master seed.

use ecds::prelude::*;

fn run_cell(master: u64, trial: u64, kind: HeuristicKind, variant: FilterVariant) -> TrialResult {
    let scenario = Scenario::small_for_tests(master);
    let trace = scenario.trace(trial);
    let mut mapper = build_scheduler(kind, variant, &scenario, trial);
    Simulation::new(&scenario, &trace).run(mapper.as_mut())
}

#[test]
fn identical_seeds_reproduce_identical_results() {
    for kind in HeuristicKind::ALL {
        let a = run_cell(9, 0, kind, FilterVariant::EnergyAndRobustness);
        let b = run_cell(9, 0, kind, FilterVariant::EnergyAndRobustness);
        assert_eq!(a.outcomes(), b.outcomes(), "{kind} diverged");
        assert_eq!(a.total_energy(), b.total_energy());
        assert_eq!(a.exhausted_at(), b.exhausted_at());
        assert_eq!(a.makespan(), b.makespan());
    }
}

#[test]
fn different_master_seeds_differ() {
    let a = run_cell(9, 0, HeuristicKind::Mect, FilterVariant::None);
    let b = run_cell(10, 0, HeuristicKind::Mect, FilterVariant::None);
    assert_ne!(a.outcomes(), b.outcomes());
}

#[test]
fn different_trials_differ_under_one_seed() {
    let a = run_cell(9, 0, HeuristicKind::Mect, FilterVariant::None);
    let b = run_cell(9, 1, HeuristicKind::Mect, FilterVariant::None);
    assert_ne!(a.outcomes(), b.outcomes());
}

#[test]
fn scheduler_reuse_across_trials_is_stateless() {
    // Reusing one scheduler across trials (the ledger resets via
    // on_trial_start) must equal building a fresh one per trial.
    let scenario = Scenario::small_for_tests(3);
    let trace0 = scenario.trace(0);
    let trace1 = scenario.trace(1);

    let mut reused = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    let _ = Simulation::new(&scenario, &trace0).run(reused.as_mut());
    let second_with_reuse = Simulation::new(&scenario, &trace1).run(reused.as_mut());

    let mut fresh = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    let second_fresh = Simulation::new(&scenario, &trace1).run(fresh.as_mut());
    assert_eq!(second_with_reuse.outcomes(), second_fresh.outcomes());
}

#[test]
fn random_heuristic_is_reproducible_per_trial_index() {
    let a = run_cell(4, 2, HeuristicKind::Random, FilterVariant::None);
    let b = run_cell(4, 2, HeuristicKind::Random, FilterVariant::None);
    assert_eq!(a.outcomes(), b.outcomes());
    let c = run_cell(4, 3, HeuristicKind::Random, FilterVariant::None);
    assert_ne!(a.outcomes(), c.outcomes());
}

#[test]
fn parallel_trials_are_deterministic_across_thread_counts() {
    // Fan the same trial set out over 1 thread and over the machine's full
    // parallelism. Schedulers (with the prefix cache enabled — the factory
    // default) are built per work item, so per-trial results must be
    // bit-identical no matter how work lands on threads.
    use ecds_bench::{default_threads, run_parallel};

    let scenario = Scenario::small_for_tests(23);
    let traces: Vec<_> = (0..6u64).map(|t| scenario.trace(t)).collect();
    let run_all = |threads: usize| {
        run_parallel(traces.len(), threads, |idx| {
            let mut mapper = build_scheduler(
                HeuristicKind::LightestLoad,
                FilterVariant::EnergyAndRobustness,
                &scenario,
                idx as u64,
            );
            Simulation::new(&scenario, &traces[idx]).run(mapper.as_mut())
        })
    };
    let serial = run_all(1);
    let parallel = run_all(default_threads());
    assert_eq!(serial.len(), parallel.len());
    for (trial, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.outcomes(), b.outcomes(), "trial {trial} diverged");
        assert_eq!(a.total_energy(), b.total_energy(), "trial {trial} energy");
        assert_eq!(a.makespan(), b.makespan(), "trial {trial} makespan");
        assert_eq!(
            a.telemetry(),
            b.telemetry(),
            "trial {trial} telemetry (including cache counters) diverged"
        );
    }
}

#[test]
fn scenario_artifacts_are_stable() {
    let a = Scenario::small_for_tests(77);
    let b = Scenario::small_for_tests(77);
    assert_eq!(a.cluster(), b.cluster());
    assert_eq!(a.energy_budget(), b.energy_budget());
    assert_eq!(a.table().t_avg(), b.table().t_avg());
    assert_eq!(a.trace(5), b.trace(5));
}
