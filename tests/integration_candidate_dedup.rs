//! Differential proof that candidate equivalence-class deduplication is
//! invisible: full trials run with the deduplicating scheduler (the
//! default) must be bit-identical — task outcomes, energy, makespan,
//! exhaustion, telemetry series — to trials run with a scheduler that
//! evaluates every (core, P-state) pair independently.
//!
//! Only the *semantic* fields are compared; the dedup counters themselves
//! legitimately differ (that is the whole point of having both modes).

use ecds::prelude::*;

fn run_pair(
    master: u64,
    trial: u64,
    kind: HeuristicKind,
    variant: FilterVariant,
) -> (TrialResult, TrialResult) {
    let scenario = Scenario::small_for_tests(master);
    let trace = scenario.trace(trial);
    let mut deduped = build_scheduler(kind, variant, &scenario, trial);
    let mut per_core =
        Box::new((*build_scheduler(kind, variant, &scenario, trial)).without_candidate_dedup());
    let a = Simulation::new(&scenario, &trace).run(deduped.as_mut());
    let b = Simulation::new(&scenario, &trace).run(per_core.as_mut());
    (a, b)
}

fn assert_semantically_identical(a: &TrialResult, b: &TrialResult, label: &str) {
    assert_eq!(a.outcomes(), b.outcomes(), "{label}: outcomes diverged");
    assert_eq!(
        a.total_energy(),
        b.total_energy(),
        "{label}: energy diverged"
    );
    assert_eq!(
        a.exhausted_at(),
        b.exhausted_at(),
        "{label}: exhaustion diverged"
    );
    assert_eq!(a.makespan(), b.makespan(), "{label}: makespan diverged");
    let (ta, tb) = (a.telemetry(), b.telemetry());
    assert_eq!(
        ta.queue_depth, tb.queue_depth,
        "{label}: queue depth diverged"
    );
    assert_eq!(ta.busy_cores, tb.busy_cores, "{label}: busy cores diverged");
    assert_eq!(ta.power, tb.power, "{label}: power timeline diverged");
}

/// The acceptance grid: ≥3 seeds × all heuristics, with the paper's best
/// filter chain — the configuration where replicated estimates drive every
/// decision through ECT, ρ, and the robustness filter (so any replication
/// error would change assignments, not just diagnostics).
#[test]
fn deduped_equals_per_core_across_seeds_and_heuristics() {
    for master in [3, 11, 29] {
        for kind in HeuristicKind::ALL {
            let (a, b) = run_pair(master, 0, kind, FilterVariant::EnergyAndRobustness);
            assert_semantically_identical(&a, &b, &format!("seed {master} / {kind}"));
        }
    }
}

/// Filters drop different candidate subsets, so each chain exercises
/// different replicated-estimate consumption paths — including argmin
/// tie-breaks among bit-identical class members, which must keep resolving
/// to the lowest (core, P-state) emitted.
#[test]
fn deduped_equals_per_core_across_filter_variants() {
    for variant in FilterVariant::ALL {
        let (a, b) = run_pair(7, 1, HeuristicKind::Mect, variant);
        assert_semantically_identical(&a, &b, &format!("variant {variant}"));
    }
}

/// Dedup composes with the cache escape hatch: the uncached deduplicating
/// evaluator must also be invisible relative to the uncached per-core one.
#[test]
fn deduped_equals_per_core_without_prefix_cache() {
    let scenario = Scenario::small_for_tests(11);
    let trace = scenario.trace(0);
    let kind = HeuristicKind::LightestLoad;
    let variant = FilterVariant::EnergyAndRobustness;
    let mut deduped =
        Box::new((*build_scheduler(kind, variant, &scenario, 0)).without_prefix_cache());
    let mut per_core = Box::new(
        (*build_scheduler(kind, variant, &scenario, 0))
            .without_prefix_cache()
            .without_candidate_dedup(),
    );
    let a = Simulation::new(&scenario, &trace).run(deduped.as_mut());
    let b = Simulation::new(&scenario, &trace).run(per_core.as_mut());
    assert_semantically_identical(&a, &b, "uncached pair");
}

/// Dedup must actually be collapsing work: on the bundled scenario most
/// arrivals see several interchangeable cores, so classes per event sit
/// strictly below the core count and skipped evaluations accumulate. The
/// per-core scheduler reports no dedup stats at all.
#[test]
fn deduped_runs_report_classes_and_per_core_report_none() {
    let scenario = Scenario::small_for_tests(3);
    let trace = scenario.trace(0);
    let mut deduped = build_scheduler(
        HeuristicKind::Mect,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    let a = Simulation::new(&scenario, &trace).run(deduped.as_mut());
    let mapper = a.telemetry().mapper;
    let (classes, events) = mapper.candidate_classes.expect("dedup is on by default");
    assert!(events > 0, "every arrival is a mapping event");
    assert!(classes >= events, "at least one class per event");
    let cores = scenario.cluster().total_cores() as u64;
    assert!(
        classes < events * cores,
        "some event must collapse at least two cores ({classes} classes \
         over {events} events on {cores} cores)"
    );
    let per_event = mapper.classes_per_event().expect("events were recorded");
    assert!(per_event >= 1.0 && per_event < cores as f64);
    assert!(mapper.dedup_skipped_evaluations > 0);

    let mut per_core = Box::new(
        (*build_scheduler(
            HeuristicKind::Mect,
            FilterVariant::EnergyAndRobustness,
            &scenario,
            0,
        ))
        .without_candidate_dedup(),
    );
    let b = Simulation::new(&scenario, &trace).run(per_core.as_mut());
    assert_eq!(b.telemetry().mapper.candidate_classes, None);
    assert_eq!(b.telemetry().mapper.dedup_skipped_evaluations, 0);
    assert_eq!(b.telemetry().mapper.classes_per_event(), None);
}
