//! Paper-shape assertions on a scaled-down configuration: the qualitative
//! findings of Sec. VII must hold in miniature. (The quantitative
//! reproduction at paper scale lives in the bench harness and
//! EXPERIMENTS.md; these tests keep the shape from regressing without
//! paper-scale runtimes.)

use ecds::prelude::*;

const TRIALS: u64 = 6;

/// Mean missed deadlines for one grid cell over a handful of trials.
fn mean_missed(scenario: &Scenario, kind: HeuristicKind, variant: FilterVariant) -> f64 {
    let total: usize = (0..TRIALS)
        .map(|trial| {
            let trace = scenario.trace(trial);
            let mut mapper = build_scheduler(kind, variant, scenario, trial);
            Simulation::new(scenario, &trace)
                .run(mapper.as_mut())
                .missed()
        })
        .sum();
    total as f64 / TRIALS as f64
}

fn scenario() -> Scenario {
    Scenario::small_for_tests(1353)
}

#[test]
fn random_is_the_worst_unfiltered_heuristic() {
    let s = scenario();
    let s_window = s.workload().window as f64;
    let random = mean_missed(&s, HeuristicKind::Random, FilterVariant::None);
    // Strictly worse than the queue-aware heuristics; LL unfiltered is
    // itself poor (the paper's Fig. 4 vs Fig. 5 gap shrinks at small
    // scale), so allow a small-tolerance tie there.
    for kind in [HeuristicKind::ShortestQueue, HeuristicKind::Mect] {
        let other = mean_missed(&s, kind, FilterVariant::None);
        assert!(
            random > other,
            "unfiltered Random ({random}) should be worst, but {kind} missed {other}"
        );
    }
    let ll = mean_missed(&s, HeuristicKind::LightestLoad, FilterVariant::None);
    assert!(
        random >= ll - 0.05 * s_window,
        "unfiltered Random ({random}) should not be clearly better than LL ({ll})"
    );
}

#[test]
fn full_filtering_beats_unfiltered_for_every_heuristic() {
    let s = scenario();
    for kind in HeuristicKind::ALL {
        let none = mean_missed(&s, kind, FilterVariant::None);
        let both = mean_missed(&s, kind, FilterVariant::EnergyAndRobustness);
        assert!(
            both <= none,
            "{kind}: en+rob ({both}) should not be worse than none ({none})"
        );
    }
}

#[test]
fn robustness_filter_alone_changes_little_for_mect() {
    // Sec. VII: "using robustness filtering without energy filtering causes
    // no significant change in results for heuristics other than Random" —
    // MECT already picks the fastest assignment, which the filter keeps.
    let s = scenario();
    let none = mean_missed(&s, HeuristicKind::Mect, FilterVariant::None);
    let rob = mean_missed(&s, HeuristicKind::Mect, FilterVariant::Robustness);
    let window = s.workload().window as f64;
    assert!(
        (rob - none).abs() <= 0.05 * window,
        "rob-only moved MECT from {none} to {rob}"
    );
}

#[test]
fn robustness_filter_alone_helps_random_substantially() {
    let s = scenario();
    let none = mean_missed(&s, HeuristicKind::Random, FilterVariant::None);
    let rob = mean_missed(&s, HeuristicKind::Random, FilterVariant::Robustness);
    assert!(
        rob < none,
        "rob should rescue Random (none {none}, rob {rob})"
    );
}

#[test]
fn filtered_random_is_competitive_with_the_best() {
    // Sec. VII: filters, not heuristics, drive performance — filtered
    // Random lands within a few percent of filtered LL.
    let s = scenario();
    let window = s.workload().window as f64;
    let random = mean_missed(
        &s,
        HeuristicKind::Random,
        FilterVariant::EnergyAndRobustness,
    );
    let ll = mean_missed(
        &s,
        HeuristicKind::LightestLoad,
        FilterVariant::EnergyAndRobustness,
    );
    assert!(
        (random - ll).abs() <= 0.15 * window,
        "filtered Random ({random}) should be near filtered LL ({ll})"
    );
}

#[test]
fn energy_constraint_is_binding_at_paper_budget() {
    // The study is only meaningful if the budget actually bites: the
    // unfiltered heuristics must exhaust it before the workload ends.
    let s = scenario();
    let trace = s.trace(0);
    let mut mapper = build_scheduler(HeuristicKind::Mect, FilterVariant::None, &s, 0);
    let result = Simulation::new(&s, &trace).run(mapper.as_mut());
    assert!(
        result.exhausted_at().is_some(),
        "paper budget should be insufficient for energy-oblivious mapping"
    );
}
