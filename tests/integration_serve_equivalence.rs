//! Serve-vs-classic equivalence at paper scale.
//!
//! A [`ServeSession`] fed a finite [`TraceArrivalSource`] under
//! `ServeConfig::finite` is the *same* simulation as the classic
//! `Simulation::run_with` — the serving loop keeps exactly one pending
//! arrival resident, so every event pops in the same order and every f64
//! operation executes in the same sequence. This suite holds that claim to
//! `to_bits` identity on the paper-scale 1,000-task workload, across the
//! evaluator fast-path variants (prefix cache / fused kernel / candidate
//! dedup on and off), and for the batch discipline.

use ecds::ext::{run_batch, BatchDiscipline, BatchEdf, BatchMaxRho, BatchPolicy};
use ecds::prelude::*;

// ---------------------------------------------------------------------------
// Bit-identity helper (shared shape with tests/integration_checkpoint.rs).
// ---------------------------------------------------------------------------

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

fn assert_bit_identical(a: &TrialResult, b: &TrialResult, label: &str) {
    assert_eq!(a.outcomes().len(), b.outcomes().len(), "{label}: counts");
    for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(x.task, y.task, "{label}");
        assert_eq!(x.assignment, y.assignment, "{label}: {:?}", x.task);
        assert_eq!(
            opt_bits(x.start),
            opt_bits(y.start),
            "{label}: {:?}",
            x.task
        );
        assert_eq!(
            opt_bits(x.completion),
            opt_bits(y.completion),
            "{label}: {:?}",
            x.task
        );
        assert_eq!(x.cancelled, y.cancelled, "{label}: {:?}", x.task);
    }
    assert_eq!(
        a.total_energy().to_bits(),
        b.total_energy().to_bits(),
        "{label}: energy"
    );
    assert_eq!(
        opt_bits(a.exhausted_at()),
        opt_bits(b.exhausted_at()),
        "{label}: exhaustion"
    );
    assert_eq!(
        a.makespan().to_bits(),
        b.makespan().to_bits(),
        "{label}: makespan"
    );
    let (ta, tb) = (a.telemetry(), b.telemetry());
    let bits2 = |v: &[(f64, f64)]| -> Vec<(u64, u64)> {
        v.iter().map(|&(p, q)| (p.to_bits(), q.to_bits())).collect()
    };
    assert_eq!(
        bits2(&ta.queue_depth),
        bits2(&tb.queue_depth),
        "{label}: queue depth"
    );
    assert_eq!(
        ta.busy_cores
            .iter()
            .map(|&(t, n)| (t.to_bits(), n))
            .collect::<Vec<_>>(),
        tb.busy_cores
            .iter()
            .map(|&(t, n)| (t.to_bits(), n))
            .collect::<Vec<_>>(),
        "{label}: busy cores"
    );
    assert_eq!(bits2(&ta.power), bits2(&tb.power), "{label}: power");
    assert_eq!(ta.mapper, tb.mapper, "{label}: mapper stats");
}

fn serve_trace(
    scenario: &Scenario,
    trace: &WorkloadTrace,
    discipline: &mut dyn Discipline,
) -> TrialResult {
    let mut source = TraceArrivalSource::new(trace);
    let mut session = ServeSession::new(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        ServeConfig::finite(trace.len()),
        &mut source,
        discipline,
    );
    session.run(&mut source, discipline);
    session.finish(discipline)
}

// ---------------------------------------------------------------------------
// The tentpole acceptance test: 1,000 tasks, every evaluator variant.
// ---------------------------------------------------------------------------

#[test]
fn thousand_task_serve_matches_classic_across_evaluator_variants() {
    let scenario = Scenario::paper(1353);
    let trace = scenario.trace(0);
    assert_eq!(trace.len(), 1000, "paper scenario must be full scale");

    type Tweak = fn(Scheduler) -> Scheduler;
    let variants: [(&str, Tweak); 4] = [
        ("all fast paths", |s| s),
        ("no prefix cache", Scheduler::without_prefix_cache),
        ("no fused kernel", Scheduler::without_fused_kernel),
        ("no candidate dedup", Scheduler::without_candidate_dedup),
    ];
    let build = |tweak: Tweak| {
        tweak(*build_scheduler(
            HeuristicKind::LightestLoad,
            FilterVariant::EnergyAndRobustness,
            &scenario,
            0,
        ))
    };
    for (label, tweak) in variants {
        let mut classic_scheduler = build(tweak);
        let mut classic_discipline = ImmediateDiscipline::new(&mut classic_scheduler);
        let classic = Simulation::new(&scenario, &trace).run_with(&mut classic_discipline);

        let mut serve_scheduler = build(tweak);
        let mut serve_discipline = ImmediateDiscipline::new(&mut serve_scheduler);
        let served = serve_trace(&scenario, &trace, &mut serve_discipline);

        assert_bit_identical(&classic, &served, label);
    }
}

/// The smaller grid: every heuristic under both engines, with the energy
/// budget active, at test scale.
#[test]
fn small_scale_serve_matches_classic_for_every_heuristic() {
    for master in [3, 29] {
        let scenario = Scenario::small_for_tests(master);
        let trace = scenario.trace(0);
        for kind in HeuristicKind::ALL {
            let mut classic_scheduler =
                build_scheduler(kind, FilterVariant::EnergyAndRobustness, &scenario, 0);
            let mut classic_discipline = ImmediateDiscipline::new(classic_scheduler.as_mut());
            let classic = Simulation::new(&scenario, &trace).run_with(&mut classic_discipline);

            let mut serve_scheduler =
                build_scheduler(kind, FilterVariant::EnergyAndRobustness, &scenario, 0);
            let mut serve_discipline = ImmediateDiscipline::new(serve_scheduler.as_mut());
            let served = serve_trace(&scenario, &trace, &mut serve_discipline);

            assert_bit_identical(&classic, &served, &format!("seed {master} / {kind}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Batch discipline equivalence.
// ---------------------------------------------------------------------------

#[test]
fn batch_serve_matches_run_batch() {
    for master in [5, 17] {
        let scenario = Scenario::small_for_tests(master);
        let trace = scenario.trace(0);

        type MakePolicy = fn() -> Box<dyn BatchPolicy>;
        let policies: [(&str, MakePolicy); 2] = [
            ("max-rho", || Box::new(BatchMaxRho::default())),
            ("edf", || Box::new(BatchEdf)),
        ];
        for (label, make) in policies {
            let mut classic_policy = make();
            let classic = run_batch(&scenario, &trace, classic_policy.as_mut());

            let mut serve_policy = make();
            let mut discipline = BatchDiscipline::new(serve_policy.as_mut());
            let served = serve_trace(&scenario, &trace, &mut discipline);

            assert_bit_identical(&classic, &served, &format!("seed {master} / {label}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded retention: the summary agrees with the full-retention result.
// ---------------------------------------------------------------------------

#[test]
fn bounded_retention_summary_agrees_with_full_run() {
    // Bounded retention requires an unconstrained energy budget (compaction
    // destroys the exhaustion history a budget check would need).
    let scenario = Scenario::small_for_tests(9).with_sim_config(SimConfig::unconstrained());
    let trace = scenario.trace(0);

    let mut classic_scheduler = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::None,
        &scenario,
        0,
    );
    let mut classic_discipline = ImmediateDiscipline::new(classic_scheduler.as_mut());
    let classic = Simulation::new(&scenario, &trace).run_with(&mut classic_discipline);

    let mut serve_scheduler = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::None,
        &scenario,
        0,
    );
    let mut serve_discipline = ImmediateDiscipline::new(serve_scheduler.as_mut());
    let mut source = TraceArrivalSource::new(&trace);
    let cfg = ServeConfig {
        horizon: Horizon::Fixed(trace.len() as u64),
        retention: Retention::Bounded { flush_every: 16 },
        max_arrivals: None,
    };
    let mut session = ServeSession::new(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        cfg,
        &mut source,
        &mut serve_discipline,
    );
    session.run(&mut source, &mut serve_discipline);
    let summary = session.finish_summary(&serve_discipline);

    assert_eq!(summary.arrivals as usize, trace.len());
    assert_eq!(
        summary.tally.retired,
        trace.len() as u64,
        "all tasks retire"
    );
    assert_eq!(summary.tally.completed as usize, classic.completed());
    assert_eq!(summary.tally.cancelled as usize, classic.cancelled());
    assert_eq!(summary.tally.discarded as usize, classic.discarded());
    assert_eq!(
        summary.tally.on_time as usize,
        classic.on_time_ignoring_energy(),
        "deadline hits agree (no budget, so energy cannot disqualify)"
    );
    assert_eq!(
        summary.total_energy.to_bits(),
        classic.total_energy().to_bits(),
        "energy folds are bit-identical under compaction"
    );
    assert_eq!(summary.makespan.to_bits(), classic.makespan().to_bits());
}
