//! Differential checkpoint/restore suite.
//!
//! A serving session checkpointed at an arbitrary event boundary and
//! restored into *freshly constructed* collaborators (source, discipline,
//! scheduler) must finish the trial bit-identically to an uninterrupted
//! run — same outcomes, energy, telemetry, and RNG consumption. Identity
//! is asserted through `f64::to_bits`, never float `==`, so `-0.0`/`0.0`
//! masking and NaN-hostility cannot hide a divergence.

use ecds::ext::{BatchDiscipline, BatchEdf, BatchMaxRho, BatchPolicy};
use ecds::prelude::*;
use ecds::sim::{ServeConfig, ServeSession};
use ecds::workload::TraceArrivalSource;

// ---------------------------------------------------------------------------
// Bit-identity helpers.
// ---------------------------------------------------------------------------

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

fn series_bits(v: &[(f64, f64)]) -> Vec<(u64, u64)> {
    v.iter().map(|&(a, b)| (a.to_bits(), b.to_bits())).collect()
}

fn assert_bit_identical(a: &TrialResult, b: &TrialResult, label: &str) {
    assert_eq!(
        a.outcomes().len(),
        b.outcomes().len(),
        "{label}: outcome count diverged"
    );
    for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(x.task, y.task, "{label}: task id order diverged");
        assert_eq!(
            x.assignment, y.assignment,
            "{label}: assignment of {:?} diverged",
            x.task
        );
        assert_eq!(
            opt_bits(x.start),
            opt_bits(y.start),
            "{label}: start of {:?} diverged",
            x.task
        );
        assert_eq!(
            opt_bits(x.completion),
            opt_bits(y.completion),
            "{label}: completion of {:?} diverged",
            x.task
        );
        assert_eq!(
            x.cancelled, y.cancelled,
            "{label}: cancellation of {:?} diverged",
            x.task
        );
    }
    assert_eq!(
        a.total_energy().to_bits(),
        b.total_energy().to_bits(),
        "{label}: energy diverged"
    );
    assert_eq!(
        opt_bits(a.exhausted_at()),
        opt_bits(b.exhausted_at()),
        "{label}: exhaustion diverged"
    );
    assert_eq!(
        a.makespan().to_bits(),
        b.makespan().to_bits(),
        "{label}: makespan diverged"
    );
    let (ta, tb) = (a.telemetry(), b.telemetry());
    assert_eq!(
        series_bits(&ta.queue_depth),
        series_bits(&tb.queue_depth),
        "{label}: queue-depth series diverged"
    );
    assert_eq!(
        ta.busy_cores
            .iter()
            .map(|&(t, n)| (t.to_bits(), n))
            .collect::<Vec<_>>(),
        tb.busy_cores
            .iter()
            .map(|&(t, n)| (t.to_bits(), n))
            .collect::<Vec<_>>(),
        "{label}: busy-core series diverged"
    );
    assert_eq!(
        series_bits(&ta.power),
        series_bits(&tb.power),
        "{label}: power timeline diverged"
    );
    assert_eq!(ta.mapper, tb.mapper, "{label}: mapper stats diverged");
}

// ---------------------------------------------------------------------------
// Immediate mode.
// ---------------------------------------------------------------------------

fn serve_immediate(
    scenario: &Scenario,
    trace: &WorkloadTrace,
    kind: HeuristicKind,
    variant: FilterVariant,
    checkpoint_at: Option<u64>,
) -> TrialResult {
    let cfg = ServeConfig::finite(trace.len());
    let Some(at) = checkpoint_at else {
        // Uninterrupted reference run.
        let mut scheduler = build_scheduler(kind, variant, scenario, 0);
        let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
        let mut source = TraceArrivalSource::new(trace);
        let mut session = ServeSession::new(
            scenario.cluster(),
            scenario.table(),
            scenario.sim_config(),
            cfg,
            &mut source,
            &mut discipline,
        );
        session.run(&mut source, &mut discipline);
        return session.finish(&mut discipline);
    };
    // Drive `at` events, checkpoint, and drop every live object.
    let bytes = {
        let mut scheduler = build_scheduler(kind, variant, scenario, 0);
        let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
        let mut source = TraceArrivalSource::new(trace);
        let mut session = ServeSession::new(
            scenario.cluster(),
            scenario.table(),
            scenario.sim_config(),
            cfg,
            &mut source,
            &mut discipline,
        );
        session.run_events(at, &mut source, &mut discipline);
        session.checkpoint(&source, &discipline)
    };
    // Resume into brand-new collaborators.
    let mut scheduler = build_scheduler(kind, variant, scenario, 0);
    let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
    let mut source = TraceArrivalSource::new(trace);
    let mut session = ServeSession::restore(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        &bytes,
        &mut source,
        &mut discipline,
    )
    .expect("restore of a freshly sealed checkpoint");
    session.run(&mut source, &mut discipline);
    session.finish(&mut discipline)
}

/// The acceptance grid: three seeds, every heuristic, snapshots at the very
/// start (event 0), mid-burst, and deep into the trial.
#[test]
fn immediate_restore_is_bit_identical_across_the_grid() {
    for master in [3, 11, 29] {
        let scenario = Scenario::small_for_tests(master);
        let trace = scenario.trace(0);
        for kind in HeuristicKind::ALL {
            let variant = FilterVariant::EnergyAndRobustness;
            let reference = serve_immediate(&scenario, &trace, kind, variant, None);
            for at in [0, 37, 93] {
                let resumed = serve_immediate(&scenario, &trace, kind, variant, Some(at));
                assert_bit_identical(
                    &reference,
                    &resumed,
                    &format!("seed {master} / {kind} / checkpoint@{at}"),
                );
            }
        }
    }
}

/// A dense snapshot sweep on one configuration: every part of the trial —
/// the primed-but-unstarted state, the first burst, queue drain — must be a
/// valid checkpoint boundary. The Random heuristic makes this also a test
/// of exact RNG stream positioning.
#[test]
fn immediate_restore_holds_at_every_probed_boundary() {
    let scenario = Scenario::small_for_tests(11);
    let trace = scenario.trace(1);
    let kind = HeuristicKind::Random;
    let variant = FilterVariant::Energy;
    let reference = serve_immediate(&scenario, &trace, kind, variant, None);
    for at in [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 110, 200] {
        let resumed = serve_immediate(&scenario, &trace, kind, variant, Some(at));
        assert_bit_identical(&reference, &resumed, &format!("boundary {at}"));
    }
}

/// Cancel-overdue adds the chained-cancellation path to the restored state
/// machine (queued tasks cancelled at completion events).
#[test]
fn immediate_restore_survives_cancel_overdue() {
    let base = Scenario::small_for_tests(29);
    let scenario = base.with_sim_config({
        let mut c = *base.sim_config();
        c.cancel_overdue = true;
        c
    });
    let trace = scenario.trace(0);
    let kind = HeuristicKind::Mect;
    let variant = FilterVariant::None;
    let reference = serve_immediate(&scenario, &trace, kind, variant, None);
    assert!(
        reference.cancelled() > 0 || reference.completed() > 0,
        "scenario must exercise the engine"
    );
    for at in [17, 61] {
        let resumed = serve_immediate(&scenario, &trace, kind, variant, Some(at));
        assert_bit_identical(&reference, &resumed, &format!("cancel_overdue@{at}"));
    }
}

// ---------------------------------------------------------------------------
// Batch mode.
// ---------------------------------------------------------------------------

fn serve_batch(
    scenario: &Scenario,
    trace: &WorkloadTrace,
    policy: &mut dyn BatchPolicy,
    checkpoint_at: Option<u64>,
) -> TrialResult {
    let cfg = ServeConfig::finite(trace.len());
    let Some(at) = checkpoint_at else {
        let mut discipline = BatchDiscipline::new(policy);
        let mut source = TraceArrivalSource::new(trace);
        let mut session = ServeSession::new(
            scenario.cluster(),
            scenario.table(),
            scenario.sim_config(),
            cfg,
            &mut source,
            &mut discipline,
        );
        session.run(&mut source, &mut discipline);
        return session.finish(&mut discipline);
    };
    let bytes = {
        let mut discipline = BatchDiscipline::new(policy);
        let mut source = TraceArrivalSource::new(trace);
        let mut session = ServeSession::new(
            scenario.cluster(),
            scenario.table(),
            scenario.sim_config(),
            cfg,
            &mut source,
            &mut discipline,
        );
        session.run_events(at, &mut source, &mut discipline);
        session.checkpoint(&source, &discipline)
    };
    let mut discipline = BatchDiscipline::new(policy);
    let mut source = TraceArrivalSource::new(trace);
    let mut session = ServeSession::restore(
        scenario.cluster(),
        scenario.table(),
        scenario.sim_config(),
        &bytes,
        &mut source,
        &mut discipline,
    )
    .expect("restore of a freshly sealed batch checkpoint");
    session.run(&mut source, &mut discipline);
    session.finish(&mut discipline)
}

/// Batch mode checkpoints the central pending bag and the energy ledger in
/// the discipline itself — restoring mid-trial must keep dispatch decisions
/// identical for both bundled policies.
#[test]
fn batch_restore_is_bit_identical() {
    for master in [3, 11, 29] {
        let scenario = Scenario::small_for_tests(master);
        let trace = scenario.trace(0);
        let reference = serve_batch(&scenario, &trace, &mut BatchMaxRho::default(), None);
        for at in [0, 37, 93] {
            let resumed = serve_batch(&scenario, &trace, &mut BatchMaxRho::default(), Some(at));
            assert_bit_identical(
                &reference,
                &resumed,
                &format!("max-rho seed {master} / checkpoint@{at}"),
            );
        }
        let reference = serve_batch(&scenario, &trace, &mut BatchEdf, None);
        for at in [0, 37, 93] {
            let resumed = serve_batch(&scenario, &trace, &mut BatchEdf, Some(at));
            assert_bit_identical(
                &reference,
                &resumed,
                &format!("edf seed {master} / checkpoint@{at}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Robustness of the restore path itself.
// ---------------------------------------------------------------------------

/// A checkpoint taken after the queue drained restores to a finished
/// session.
#[test]
fn restore_of_a_drained_session_finishes_directly() {
    let scenario = Scenario::small_for_tests(3);
    let trace = scenario.trace(0);
    let reference = serve_immediate(
        &scenario,
        &trace,
        HeuristicKind::ShortestQueue,
        FilterVariant::None,
        None,
    );
    // Far beyond the event count: run_events drains, checkpoint captures
    // the terminal state.
    let resumed = serve_immediate(
        &scenario,
        &trace,
        HeuristicKind::ShortestQueue,
        FilterVariant::None,
        Some(1_000_000),
    );
    assert_bit_identical(&reference, &resumed, "drained checkpoint");
}

/// Restoring under a different simulator configuration must fail with the
/// typed mismatch error, not silently diverge.
#[test]
fn restore_rejects_config_mismatch() {
    let scenario = Scenario::small_for_tests(3);
    let trace = scenario.trace(0);
    let bytes = {
        let mut scheduler = build_scheduler(
            HeuristicKind::ShortestQueue,
            FilterVariant::None,
            &scenario,
            0,
        );
        let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
        let mut source = TraceArrivalSource::new(&trace);
        let mut session = ServeSession::new(
            scenario.cluster(),
            scenario.table(),
            scenario.sim_config(),
            ServeConfig::finite(trace.len()),
            &mut source,
            &mut discipline,
        );
        session.run_events(10, &mut source, &mut discipline);
        session.checkpoint(&source, &discipline)
    };
    let mut other_cfg = *scenario.sim_config();
    other_cfg.cancel_overdue = !other_cfg.cancel_overdue;
    let mut scheduler = build_scheduler(
        HeuristicKind::ShortestQueue,
        FilterVariant::None,
        &scenario,
        0,
    );
    let mut discipline = ImmediateDiscipline::new(scheduler.as_mut());
    let mut source = TraceArrivalSource::new(&trace);
    let err = ServeSession::restore(
        scenario.cluster(),
        scenario.table(),
        &other_cfg,
        &bytes,
        &mut source,
        &mut discipline,
    )
    .expect_err("config digest must be verified");
    assert!(
        matches!(
            err,
            ecds::persist::DecodeError::Corrupt("checkpoint simulator config mismatch")
        ),
        "unexpected error: {err:?}"
    );
}
