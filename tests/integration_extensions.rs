//! End-to-end coverage of the future-work extensions through the facade:
//! batch rescheduling, cancellation, priorities, and stochastic power.

use ecds::ext::{
    assign_priorities, multi_burst, ramp, run_batch, sinusoidal, BatchEdf, BatchMaxRho,
    CancellationReport, PriorityClass, PriorityEnergyFilter, PriorityReport, StochasticPowerModel,
};
use ecds::prelude::*;

fn scenario() -> Scenario {
    Scenario::small_for_tests(1353)
}

#[test]
fn batch_and_immediate_agree_on_accounting_invariants() {
    let s = scenario();
    let trace = s.trace(0);
    for result in [
        run_batch(&s, &trace, &mut BatchMaxRho::default()),
        run_batch(&s, &trace, &mut BatchEdf),
    ] {
        assert_eq!(result.window(), trace.len());
        assert_eq!(result.missed() + result.completed(), result.window());
        assert!(result.total_energy() > 0.0);
        let breakdown = EnergyBreakdown::compute(&s, &result);
        assert!(
            (breakdown.busy_energy + breakdown.idle_energy - result.total_energy()).abs() < 1e-6
        );
    }
}

#[test]
fn batch_never_queues_behind_busy_cores() {
    let s = scenario();
    let trace = s.trace(2);
    let result = run_batch(&s, &trace, &mut BatchMaxRho::default());
    // In batch mode a task's start coincides with a mapping event at which
    // its core was idle; therefore start >= arrival always, and no core
    // ever runs two tasks at once (checked via span overlap).
    let mut spans: std::collections::BTreeMap<usize, Vec<(f64, f64)>> = Default::default();
    for o in result.outcomes() {
        let (Some((core, _)), Some(start), Some(end)) = (o.assignment, o.start, o.completion)
        else {
            panic!("batch mode runs everything");
        };
        assert!(start >= o.arrival);
        spans.entry(core).or_default().push((start, end));
    }
    for (_, mut s) in spans {
        s.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].0 + 1e-9));
    }
}

#[test]
fn cancellation_report_is_consistent() {
    let s = scenario().with_budget_factor(0.4);
    let trace = s.trace(0);
    let report = CancellationReport::run(&s, &trace, || {
        build_scheduler(HeuristicKind::Mect, FilterVariant::None, &s, 0)
    });
    assert_eq!(report.baseline.cancelled(), 0);
    assert_eq!(report.tasks_cancelled(), report.cancelling.cancelled());
    if report.tasks_cancelled() > 0 {
        assert!(report.energy_saved() > 0.0);
    }
}

#[test]
fn priorities_cover_the_window_and_bias_outcomes() {
    let s = scenario().with_budget_factor(0.5);
    let trace = s.trace(0);
    let priorities = assign_priorities(trace.len(), 0.3, s.seeds(), 0);
    assert_eq!(priorities.len(), trace.len());
    assert!(priorities.contains(&PriorityClass::High));
    assert!(priorities.contains(&PriorityClass::Low));

    let mut sched = Scheduler::new(
        Box::new(LightestLoad),
        vec![
            Box::new(PriorityEnergyFilter::new(priorities.clone(), 1.6, 0.5)),
            Box::new(RobustnessFilter::paper()),
        ],
        s.energy_budget().unwrap(),
        ReductionPolicy::default(),
    );
    let result = Simulation::new(&s, &trace).run(&mut sched);
    let report = PriorityReport::from_result(&result, &priorities);
    assert_eq!(report.high_total + report.low_total, trace.len());
    assert!(report.high_rate() >= report.low_rate());
}

#[test]
fn stochastic_power_means_match_the_scalar_model() {
    let s = scenario();
    let model = StochasticPowerModel::new(s.cluster(), 0.15);
    for (n, node) in s.cluster().nodes().iter().enumerate() {
        for state in PState::ALL {
            assert!((model.expected_watts(n, state) - node.power.watts(state)).abs() < 1e-9);
            assert!(model.variance(n, state) > 0.0);
        }
    }
}

#[test]
fn extension_arrival_patterns_integrate_with_scenarios() {
    for pattern in [
        sinusoidal(60, 1.0 / 56.0, 0.5, 2.0, 6),
        multi_burst(3, 10, 1.0 / 56.0, 15, 1.0 / 336.0),
        ramp(60, 1.0 / 200.0, 1.0 / 40.0, 6),
    ] {
        let mut workload = WorkloadConfig::small_for_tests();
        workload.window = pattern.total_tasks();
        workload.arrivals = pattern;
        let scenario = Scenario::with_configs(
            5,
            ecds::cluster::ClusterGenConfig::small_for_tests(),
            workload,
        );
        let trace = scenario.trace(0);
        let mut mapper = build_scheduler(
            HeuristicKind::LightestLoad,
            FilterVariant::EnergyAndRobustness,
            &scenario,
            0,
        );
        let result = Simulation::new(&scenario, &trace).run(mapper.as_mut());
        assert_eq!(result.window(), trace.len());
    }
}

#[test]
fn cancel_overdue_never_harms_the_same_trace() {
    // Cancellation frees cores earlier and burns less energy; with the
    // same mapper decisions it cannot lose completions. (Mapper decisions
    // can drift because queues differ; this asserts the weaker documented
    // guarantee on the reported counts for a fixed seed.)
    let s = scenario().with_budget_factor(0.3);
    let trace = s.trace(1);
    let report = CancellationReport::run(&s, &trace, || {
        build_scheduler(HeuristicKind::ShortestQueue, FilterVariant::None, &s, 1)
    });
    assert!(
        report.cancelling.completed() + report.cancelling.cancelled() <= report.cancelling.window()
    );
    assert!(report.misses_avoided() >= -(trace.len() as i64) / 10);
}
