//! Differential proof that the fused scratch kernel is invisible at trial
//! scale: full simulations run with the fused evaluator must be
//! bit-identical — task outcomes, energy, makespan, exhaustion, telemetry
//! series — to simulations run with the legacy allocating pipeline, across
//! seeds, heuristics, and filter variants, and composed with the prefix
//! cache both on and off.
//!
//! Only the *semantic* fields are compared; the fused-kernel invocation
//! counter itself legitimately differs (that is the whole point of having
//! both modes).

use ecds::prelude::*;

fn run_pair(
    master: u64,
    trial: u64,
    kind: HeuristicKind,
    variant: FilterVariant,
) -> (TrialResult, TrialResult) {
    let scenario = Scenario::small_for_tests(master);
    let trace = scenario.trace(trial);
    let mut fused = build_scheduler(kind, variant, &scenario, trial);
    let mut legacy =
        Box::new((*build_scheduler(kind, variant, &scenario, trial)).without_fused_kernel());
    let a = Simulation::new(&scenario, &trace).run(fused.as_mut());
    let b = Simulation::new(&scenario, &trace).run(legacy.as_mut());
    (a, b)
}

fn assert_semantically_identical(a: &TrialResult, b: &TrialResult, label: &str) {
    assert_eq!(a.outcomes(), b.outcomes(), "{label}: outcomes diverged");
    assert_eq!(
        a.total_energy(),
        b.total_energy(),
        "{label}: energy diverged"
    );
    assert_eq!(
        a.exhausted_at(),
        b.exhausted_at(),
        "{label}: exhaustion diverged"
    );
    assert_eq!(a.makespan(), b.makespan(), "{label}: makespan diverged");
    let (ta, tb) = (a.telemetry(), b.telemetry());
    assert_eq!(
        ta.queue_depth, tb.queue_depth,
        "{label}: queue depth diverged"
    );
    assert_eq!(ta.busy_cores, tb.busy_cores, "{label}: busy cores diverged");
    assert_eq!(ta.power, tb.power, "{label}: power timeline diverged");
}

/// The acceptance grid: ≥3 seeds × all four heuristics with the paper's
/// best filter chain — the configuration where every decision flows through
/// the kernel via ECT, ρ, and the robustness filter.
#[test]
fn fused_equals_legacy_across_seeds_and_heuristics() {
    for master in [3, 11, 29] {
        for kind in HeuristicKind::ALL {
            let (a, b) = run_pair(master, 0, kind, FilterVariant::EnergyAndRobustness);
            assert_semantically_identical(&a, &b, &format!("seed {master} / {kind}"));
        }
    }
}

/// Filters change which candidates survive to the heuristic, so each chain
/// exercises different kernel-consumption paths.
#[test]
fn fused_equals_legacy_across_filter_variants() {
    for variant in FilterVariant::ALL {
        let (a, b) = run_pair(7, 1, HeuristicKind::Mect, variant);
        assert_semantically_identical(&a, &b, &format!("variant {variant}"));
    }
}

/// The kernel toggle composes with the cache toggle: the fully-fused
/// default must match the fully-legacy evaluator (no cache, no scratch) —
/// the deepest differential reference available.
#[test]
fn fused_cached_equals_fully_legacy_evaluator() {
    let scenario = Scenario::small_for_tests(19);
    let trace = scenario.trace(0);
    let mut fused = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    let mut fully_legacy = Box::new(
        (*build_scheduler(
            HeuristicKind::LightestLoad,
            FilterVariant::EnergyAndRobustness,
            &scenario,
            0,
        ))
        .without_prefix_cache()
        .without_fused_kernel(),
    );
    let a = Simulation::new(&scenario, &trace).run(fused.as_mut());
    let b = Simulation::new(&scenario, &trace).run(fully_legacy.as_mut());
    assert_semantically_identical(&a, &b, "fused+cache vs fully legacy");
}

/// The fused path must actually be exercised: a full trial on the default
/// scheduler reports a busy kernel counter, and the legacy scheduler
/// reports zero.
#[test]
fn fused_runs_report_kernel_calls_and_legacy_report_zero() {
    let scenario = Scenario::small_for_tests(3);
    let trace = scenario.trace(0);
    let mut fused = build_scheduler(
        HeuristicKind::Mect,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    let a = Simulation::new(&scenario, &trace).run(fused.as_mut());
    assert!(
        a.telemetry().mapper.fused_kernel_calls > 0,
        "default scheduler must route convolutions through the fused kernel"
    );

    let mut legacy = Box::new(
        (*build_scheduler(
            HeuristicKind::Mect,
            FilterVariant::EnergyAndRobustness,
            &scenario,
            0,
        ))
        .without_fused_kernel(),
    );
    let b = Simulation::new(&scenario, &trace).run(legacy.as_mut());
    assert_eq!(b.telemetry().mapper.fused_kernel_calls, 0);
    assert_semantically_identical(&a, &b, "counter check pair");
}
