//! Differential proof that the unified-engine refactor is
//! behavior-identical to the two engines it replaced.
//!
//! The pre-refactor immediate-mode loop and the pre-refactor batch-mode
//! loop are embedded here verbatim as *reference engines* (built from the
//! same public building blocks — [`EventQueue`], [`CoreState`],
//! [`EnergyAccountant`] — or, for batch, the old private `(time, seq)`
//! heap). Every test runs the same scenario through a reference engine and
//! through the unified `Simulation::run`/`run_with` path and asserts the
//! results agree:
//!
//! * Immediate mode must be **bit-identical** — outcomes, energy,
//!   exhaustion, makespan, and every telemetry series. The engine consumes
//!   no RNG, so `results/` artifacts are untouched by the refactor.
//! * Batch mode must be **outcome-identical** up to the one documented
//!   tie-break unification: the old batch heap ordered events by
//!   `(time, insertion)` only, so an arrival scheduled before a completion
//!   *at the exact same float instant* used to pop first, while the unified
//!   queue pops completions before arrivals at equal times. Exact float
//!   ties never occur with these traces (completion times are sums of
//!   continuous quantile draws), so full identity is asserted — and the
//!   ordering delta itself is characterized by a dedicated test below.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ecds::ext::{run_batch, BatchEdf, BatchMaxRho, BatchPolicy, BatchView};
use ecds::pmf::Time;
use ecds::prelude::*;
use ecds::sim::{CoreState, EnergyAccountant, EventKind, EventQueue, ExecutingTask, QueuedTask};

// ---------------------------------------------------------------------------
// Reference engine 1: the pre-refactor immediate-mode loop, verbatim.
// ---------------------------------------------------------------------------

fn legacy_immediate(
    scenario: &Scenario,
    trace: &WorkloadTrace,
    mapper: &mut dyn Mapper,
) -> TrialResult {
    let cluster = scenario.cluster();
    let table = scenario.table();
    let cfg = scenario.sim_config();
    let tasks = trace.tasks();
    let window = tasks.len();
    let num_cores = cluster.total_cores();

    mapper.on_trial_start();

    let mut cores = vec![CoreState::new(); num_cores];
    let mut accountant = EnergyAccountant::new(cluster, 0.0, cfg.initial_pstate);
    let mut outcomes: Vec<TaskOutcome> = tasks
        .iter()
        .map(|t| TaskOutcome {
            task: t.id,
            type_id: t.type_id,
            arrival: t.arrival,
            deadline: t.deadline,
            assignment: None,
            start: None,
            completion: None,
            cancelled: false,
        })
        .collect();

    let mut queue = EventQueue::new();
    for task in tasks {
        queue.push(task.arrival, EventKind::Arrival(task.id));
    }

    let mut arrived = 0usize;
    let mut end_time: Time = 0.0;
    let mut telemetry = Telemetry::new();

    while let Some(event) = queue.pop() {
        end_time = end_time.max(event.time);
        match event.kind {
            EventKind::Arrival(task_id) => {
                arrived += 1;
                let task = &tasks[task_id.0];
                let view = SystemView::new(cluster, table, &cores, event.time, arrived, window);
                telemetry.sample(
                    event.time,
                    view.avg_queue_depth(),
                    cores.iter().filter(|c| !c.is_idle()).count(),
                );
                let Some(assignment) = mapper.assign(task, &view) else {
                    continue; // discarded — counts as a miss
                };
                outcomes[task_id.0].assignment = Some((assignment.core, assignment.pstate));
                let core_state = &mut cores[assignment.core];
                if core_state.is_idle() {
                    accountant.record(assignment.core, event.time, assignment.pstate);
                    core_state.start(ExecutingTask {
                        task: task_id,
                        type_id: task.type_id,
                        pstate: assignment.pstate,
                        start: event.time,
                        deadline: task.deadline,
                    });
                    outcomes[task_id.0].start = Some(event.time);
                    let node = cluster.core(assignment.core).node;
                    let actual =
                        table.actual_time(task.type_id, node, assignment.pstate, task.quantile);
                    queue.push(
                        event.time + actual,
                        EventKind::Completion {
                            core: assignment.core,
                            task: task_id,
                        },
                    );
                } else {
                    core_state.enqueue(QueuedTask {
                        task: task_id,
                        type_id: task.type_id,
                        pstate: assignment.pstate,
                        deadline: task.deadline,
                    });
                }
            }
            EventKind::Completion { core, task } => {
                outcomes[task.0].completion = Some(event.time);
                let (_done, mut next) = cores[core].complete();
                if cfg.cancel_overdue {
                    while let Some(queued) = next {
                        if event.time > queued.deadline {
                            outcomes[queued.task.0].cancelled = true;
                            next = cores[core].pop_queued();
                        } else {
                            next = Some(queued);
                            break;
                        }
                    }
                }
                if let Some(queued) = next {
                    accountant.record(core, event.time, queued.pstate);
                    cores[core].start(ExecutingTask {
                        task: queued.task,
                        type_id: queued.type_id,
                        pstate: queued.pstate,
                        start: event.time,
                        deadline: queued.deadline,
                    });
                    outcomes[queued.task.0].start = Some(event.time);
                    let node = cluster.core(core).node;
                    let quantile = tasks[queued.task.0].quantile;
                    let actual = table.actual_time(queued.type_id, node, queued.pstate, quantile);
                    queue.push(
                        event.time + actual,
                        EventKind::Completion {
                            core,
                            task: queued.task,
                        },
                    );
                } else if let Some(idle_state) = cfg.idle_downshift {
                    accountant.record(core, event.time, idle_state);
                }
            }
        }
    }

    accountant.finalize(end_time);
    telemetry.mapper = mapper.stats();
    telemetry.power = accountant.power_timeline(cluster);
    let total_energy = accountant.total_energy(cluster);
    let exhausted_at = cfg
        .energy_budget
        .and_then(|budget| accountant.exhaustion_time(cluster, budget));

    TrialResult::new_for_alternative_engines(
        outcomes,
        total_energy,
        exhausted_at,
        end_time,
        telemetry,
    )
}

// ---------------------------------------------------------------------------
// Reference engine 2: the pre-refactor batch-mode loop, verbatim, including
// its own (time, insertion-order) event heap — i.e. WITHOUT the unified
// queue's completions-before-arrivals rank.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrival(usize),
    Completion { core: usize, task: usize },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedEv {
    time: Time,
    seq: u64,
    ev: Ev,
}

impl Eq for QueuedEv {}
impl Ord for QueuedEv {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueuedEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn legacy_batch(
    scenario: &Scenario,
    trace: &WorkloadTrace,
    policy: &mut dyn BatchPolicy,
) -> TrialResult {
    let cluster = scenario.cluster();
    let table = scenario.table();
    let cfg = scenario.sim_config();
    let tasks = trace.tasks();
    let num_cores = cluster.total_cores();

    let mut accountant = EnergyAccountant::new(cluster, 0.0, cfg.initial_pstate);
    let mut busy: Vec<bool> = vec![false; num_cores];
    let mut pending: Vec<usize> = Vec::new();
    let mut remaining = scenario.energy_budget().unwrap_or(f64::INFINITY);
    let mut telemetry = Telemetry::new();

    let mut outcomes: Vec<TaskOutcome> = tasks
        .iter()
        .map(|t| TaskOutcome {
            task: t.id,
            type_id: t.type_id,
            arrival: t.arrival,
            deadline: t.deadline,
            assignment: None,
            start: None,
            completion: None,
            cancelled: false,
        })
        .collect();

    let mut heap: BinaryHeap<QueuedEv> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, task) in tasks.iter().enumerate() {
        heap.push(QueuedEv {
            time: task.arrival,
            seq,
            ev: Ev::Arrival(i),
        });
        seq += 1;
    }

    let mut end_time: Time = 0.0;
    while let Some(event) = heap.pop() {
        end_time = end_time.max(event.time);
        match event.ev {
            Ev::Arrival(i) => {
                pending.push(i);
                telemetry.sample(
                    event.time,
                    pending.len() as f64 / num_cores as f64,
                    busy.iter().filter(|b| **b).count(),
                );
            }
            Ev::Completion { core, task } => {
                outcomes[task].completion = Some(event.time);
                busy[core] = false;
                if let Some(idle_state) = cfg.idle_downshift {
                    accountant.record(core, event.time, idle_state);
                }
            }
        }
        let idle: Vec<usize> = (0..num_cores).filter(|&c| !busy[c]).collect();
        if idle.is_empty() || pending.is_empty() {
            continue;
        }
        let bag: Vec<Task> = pending.iter().map(|&i| tasks[i]).collect();
        let view = BatchView {
            cluster,
            table,
            now: event.time,
            idle_cores: &idle,
            remaining_energy: remaining,
        };
        let dispatches = policy.dispatch(&bag, &view);
        let mut started: Vec<usize> = Vec::new();
        for d in dispatches {
            let global = pending[d.task_index];
            let task = &tasks[global];
            let node_idx = cluster.core(d.core).node;
            let node = cluster.node(node_idx);
            accountant.record(d.core, event.time, d.pstate);
            busy[d.core] = true;
            outcomes[global].assignment = Some((d.core, d.pstate));
            outcomes[global].start = Some(event.time);
            remaining -= table.eet(task.type_id, node_idx, d.pstate) * node.power.watts(d.pstate)
                / node.efficiency;
            let actual = table.actual_time(task.type_id, node_idx, d.pstate, task.quantile);
            heap.push(QueuedEv {
                time: event.time + actual,
                seq,
                ev: Ev::Completion {
                    core: d.core,
                    task: global,
                },
            });
            seq += 1;
            started.push(d.task_index);
        }
        started.sort_unstable_by(|a, b| b.cmp(a));
        for idx in started {
            pending.swap_remove(idx);
        }
    }

    accountant.finalize(end_time);
    telemetry.power = accountant.power_timeline(cluster);
    let total_energy = accountant.total_energy(cluster);
    let exhausted_at = cfg
        .energy_budget
        .and_then(|b| accountant.exhaustion_time(cluster, b));
    TrialResult::new_for_alternative_engines(
        outcomes,
        total_energy,
        exhausted_at,
        end_time,
        telemetry,
    )
}

// ---------------------------------------------------------------------------
// Comparison helpers.
// ---------------------------------------------------------------------------

fn assert_bit_identical(a: &TrialResult, b: &TrialResult, label: &str) {
    assert_eq!(a.outcomes(), b.outcomes(), "{label}: outcomes diverged");
    assert_eq!(
        a.total_energy(),
        b.total_energy(),
        "{label}: energy diverged"
    );
    assert_eq!(
        a.exhausted_at(),
        b.exhausted_at(),
        "{label}: exhaustion diverged"
    );
    assert_eq!(a.makespan(), b.makespan(), "{label}: makespan diverged");
    let (ta, tb) = (a.telemetry(), b.telemetry());
    assert_eq!(
        ta.queue_depth, tb.queue_depth,
        "{label}: queue depth diverged"
    );
    assert_eq!(ta.busy_cores, tb.busy_cores, "{label}: busy cores diverged");
    assert_eq!(ta.power, tb.power, "{label}: power timeline diverged");
    assert_eq!(ta.mapper, tb.mapper, "{label}: mapper stats diverged");
}

// ---------------------------------------------------------------------------
// Immediate mode: bit-identity.
// ---------------------------------------------------------------------------

/// The acceptance grid: seeds × all four heuristics under the paper's best
/// filter chain.
#[test]
fn immediate_matches_legacy_across_seeds_and_heuristics() {
    for master in [3, 11, 29] {
        let scenario = Scenario::small_for_tests(master);
        let trace = scenario.trace(0);
        for kind in HeuristicKind::ALL {
            let mut old = build_scheduler(kind, FilterVariant::EnergyAndRobustness, &scenario, 0);
            let mut new = build_scheduler(kind, FilterVariant::EnergyAndRobustness, &scenario, 0);
            let a = legacy_immediate(&scenario, &trace, old.as_mut());
            let b = Simulation::new(&scenario, &trace).run(new.as_mut());
            assert_bit_identical(&a, &b, &format!("seed {master} / {kind}"));
        }
    }
}

/// Filter variants change discard patterns, exercising the discarded-task
/// path through both engines.
#[test]
fn immediate_matches_legacy_across_filter_variants() {
    let scenario = Scenario::small_for_tests(7);
    let trace = scenario.trace(1);
    for variant in FilterVariant::ALL {
        let mut old = build_scheduler(HeuristicKind::Mect, variant, &scenario, 1);
        let mut new = build_scheduler(HeuristicKind::Mect, variant, &scenario, 1);
        let a = legacy_immediate(&scenario, &trace, old.as_mut());
        let b = Simulation::new(&scenario, &trace).run(new.as_mut());
        assert_bit_identical(&a, &b, &format!("variant {variant}"));
    }
}

/// A deliberately terrible mapper: everything onto core 0 at the slowest
/// P-state. Queues grow without bound, which is exactly what the
/// cancel-overdue path needs to trigger.
struct Pileup;
impl Mapper for Pileup {
    fn assign(&mut self, _task: &Task, _view: &SystemView<'_>) -> Option<Assignment> {
        Some(Assignment {
            core: 0,
            pstate: PState::P4,
        })
    }
}

/// The cancel_overdue extension must behave identically through the
/// discipline hooks — including the chained-cancellation while-loop.
#[test]
fn immediate_matches_legacy_with_cancel_overdue() {
    let mut any_cancelled = false;
    for master in [3, 11, 29] {
        let base = Scenario::small_for_tests(master);
        let scenario = base.with_sim_config({
            let mut c = *base.sim_config();
            c.cancel_overdue = true;
            c
        });
        let trace = scenario.trace(0);
        let a = legacy_immediate(&scenario, &trace, &mut Pileup);
        let b = Simulation::new(&scenario, &trace).run(&mut Pileup);
        assert_bit_identical(&a, &b, &format!("cancel_overdue seed {master}"));
        any_cancelled |= b.cancelled() > 0;

        // And with the real scheduler, which discards as well as cancels.
        let mut old = build_scheduler(HeuristicKind::Random, FilterVariant::Energy, &scenario, 0);
        let mut new = build_scheduler(HeuristicKind::Random, FilterVariant::Energy, &scenario, 0);
        let a = legacy_immediate(&scenario, &trace, old.as_mut());
        let b = Simulation::new(&scenario, &trace).run(new.as_mut());
        assert_bit_identical(&a, &b, &format!("cancel_overdue scheduler seed {master}"));
    }
    assert!(
        any_cancelled,
        "the pileup mapper must actually trigger cancellations"
    );
}

// ---------------------------------------------------------------------------
// Batch mode: outcome-identity through the unified engine.
// ---------------------------------------------------------------------------

/// `run_batch` (now a thin adapter over the unified engine) must reproduce
/// the old standalone batch engine exactly for both bundled policies. Any
/// divergence could only come from an exact float time tie (see the module
/// docs) — which these continuous traces never produce.
#[test]
fn batch_adapter_matches_legacy_batch_engine() {
    for master in [5, 17, 1353] {
        let scenario = Scenario::small_for_tests(master);
        for trial in 0..2u64 {
            let trace = scenario.trace(trial);
            let a = legacy_batch(&scenario, &trace, &mut BatchMaxRho::default());
            let b = run_batch(&scenario, &trace, &mut BatchMaxRho::default());
            assert_bit_identical(&a, &b, &format!("max-rho seed {master} trial {trial}"));

            let a = legacy_batch(&scenario, &trace, &mut BatchEdf);
            let b = run_batch(&scenario, &trace, &mut BatchEdf);
            assert_bit_identical(&a, &b, &format!("edf seed {master} trial {trial}"));
        }
    }
}

/// Batch mode under a tight budget exercises the exhaustion cutoff the old
/// engine computed itself and now inherits from the unified engine.
#[test]
fn batch_adapter_matches_legacy_under_tight_budget() {
    let scenario = Scenario::small_for_tests(17).with_budget_factor(0.1);
    let trace = scenario.trace(0);
    let a = legacy_batch(&scenario, &trace, &mut BatchMaxRho::default());
    let b = run_batch(&scenario, &trace, &mut BatchMaxRho::default());
    assert!(b.exhausted_at().is_some(), "budget must actually bind");
    assert_bit_identical(&a, &b, "tight budget");
}

// ---------------------------------------------------------------------------
// The documented tie-break delta, characterized.
// ---------------------------------------------------------------------------

/// The ONE ordering difference the unification introduces: at an exact
/// float time tie, the old batch heap popped whichever event was inserted
/// first (arrivals are all inserted up front, so arrivals won), while the
/// unified queue pops completions before arrivals. This test pins down
/// both behaviors so the delta stays documented-and-asserted rather than
/// silent.
#[test]
fn tie_break_unification_is_the_only_ordering_delta() {
    // Old batch heap: arrival (inserted first) wins the tie.
    let mut heap: BinaryHeap<QueuedEv> = BinaryHeap::new();
    heap.push(QueuedEv {
        time: 10.0,
        seq: 0,
        ev: Ev::Arrival(1),
    });
    heap.push(QueuedEv {
        time: 10.0,
        seq: 1,
        ev: Ev::Completion { core: 0, task: 0 },
    });
    assert_eq!(
        heap.pop().unwrap().ev,
        Ev::Arrival(1),
        "legacy: insertion order only"
    );

    // Unified queue: the completion wins the tie regardless of insertion
    // order, so a core freed at instant t is visible to work mapped at t.
    let mut queue = EventQueue::new();
    queue.push(10.0, EventKind::Arrival(TaskId(1)));
    queue.push(
        10.0,
        EventKind::Completion {
            core: 0,
            task: TaskId(0),
        },
    );
    assert!(matches!(
        queue.pop().unwrap().kind,
        EventKind::Completion { .. }
    ));
}
