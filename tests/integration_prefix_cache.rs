//! Differential proof that the evaluator's versioned queue-prefix cache is
//! invisible: full trials run with the caching scheduler must be
//! bit-identical — task outcomes, energy, makespan, exhaustion, telemetry
//! series — to trials run with a scheduler that recomputes every prefix.
//!
//! Only the *semantic* fields are compared; the cache counters themselves
//! legitimately differ (that is the whole point of having both modes).

use ecds::prelude::*;

fn run_pair(
    master: u64,
    trial: u64,
    kind: HeuristicKind,
    variant: FilterVariant,
) -> (TrialResult, TrialResult) {
    let scenario = Scenario::small_for_tests(master);
    let trace = scenario.trace(trial);
    let mut cached = build_scheduler(kind, variant, &scenario, trial);
    let mut uncached =
        Box::new((*build_scheduler(kind, variant, &scenario, trial)).without_prefix_cache());
    let a = Simulation::new(&scenario, &trace).run(cached.as_mut());
    let b = Simulation::new(&scenario, &trace).run(uncached.as_mut());
    (a, b)
}

fn assert_semantically_identical(a: &TrialResult, b: &TrialResult, label: &str) {
    assert_eq!(a.outcomes(), b.outcomes(), "{label}: outcomes diverged");
    assert_eq!(
        a.total_energy(),
        b.total_energy(),
        "{label}: energy diverged"
    );
    assert_eq!(
        a.exhausted_at(),
        b.exhausted_at(),
        "{label}: exhaustion diverged"
    );
    assert_eq!(a.makespan(), b.makespan(), "{label}: makespan diverged");
    let (ta, tb) = (a.telemetry(), b.telemetry());
    assert_eq!(
        ta.queue_depth, tb.queue_depth,
        "{label}: queue depth diverged"
    );
    assert_eq!(ta.busy_cores, tb.busy_cores, "{label}: busy cores diverged");
    assert_eq!(ta.power, tb.power, "{label}: power timeline diverged");
}

/// The acceptance grid: ≥3 seeds × ≥3 heuristics (all four, in fact), with
/// the paper's best filter chain — the configuration where prefix pmfs
/// drive every decision through ECT, ρ, and the robustness filter.
#[test]
fn cached_equals_uncached_across_seeds_and_heuristics() {
    for master in [3, 11, 29] {
        for kind in HeuristicKind::ALL {
            let (a, b) = run_pair(master, 0, kind, FilterVariant::EnergyAndRobustness);
            assert_semantically_identical(&a, &b, &format!("seed {master} / {kind}"));
        }
    }
}

/// Filters change which candidates survive to the heuristic, so each chain
/// exercises different prefix-consumption paths.
#[test]
fn cached_equals_uncached_across_filter_variants() {
    for variant in FilterVariant::ALL {
        let (a, b) = run_pair(7, 1, HeuristicKind::Mect, variant);
        assert_semantically_identical(&a, &b, &format!("variant {variant}"));
    }
}

/// Later trials reuse the scheduler (and therefore the cache) across
/// on_trial_start boundaries — stale entries must never leak into the next
/// trial.
#[test]
fn cache_does_not_leak_across_trials() {
    let scenario = Scenario::small_for_tests(13);
    let mut cached = build_scheduler(
        HeuristicKind::LightestLoad,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    for trial in 0..3u64 {
        let trace = scenario.trace(trial);
        let a = Simulation::new(&scenario, &trace).run(cached.as_mut());
        let mut fresh = Box::new(
            (*build_scheduler(
                HeuristicKind::LightestLoad,
                FilterVariant::EnergyAndRobustness,
                &scenario,
                0,
            ))
            .without_prefix_cache(),
        );
        let b = Simulation::new(&scenario, &trace).run(fresh.as_mut());
        assert_semantically_identical(&a, &b, &format!("trial {trial}"));
    }
}

/// The cache must actually be doing something: on a bursty trace the
/// scheduler looks at every core per arrival while most cores' queues
/// change only between their own events, so a healthy majority of lookups
/// hit.
#[test]
fn cached_runs_report_hits_and_uncached_report_none() {
    let scenario = Scenario::small_for_tests(3);
    let trace = scenario.trace(0);
    let mut cached = build_scheduler(
        HeuristicKind::Mect,
        FilterVariant::EnergyAndRobustness,
        &scenario,
        0,
    );
    let a = Simulation::new(&scenario, &trace).run(cached.as_mut());
    let hits = a.telemetry().mapper.prefix_cache_hits();
    let misses = a.telemetry().mapper.prefix_cache_misses();
    assert!(hits > 0, "no cache hits over a whole trial");
    assert!(misses > 0, "every core mutates at least once");
    assert_eq!(
        a.telemetry().prefix_cache_hit_rate(),
        Some(hits as f64 / (hits + misses) as f64)
    );

    let mut uncached = Box::new(
        (*build_scheduler(
            HeuristicKind::Mect,
            FilterVariant::EnergyAndRobustness,
            &scenario,
            0,
        ))
        .without_prefix_cache(),
    );
    let b = Simulation::new(&scenario, &trace).run(uncached.as_mut());
    assert_eq!(b.telemetry().mapper.prefix_cache_hits(), 0);
    assert_eq!(b.telemetry().mapper.prefix_cache_misses(), 0);
    assert_eq!(b.telemetry().prefix_cache_hit_rate(), None);
}

/// Direct evaluator-level sweep: every candidate estimate over a busy
/// mid-trial view must be bit-identical between modes, including after
/// time advances and after queue mutations.
#[test]
fn evaluator_level_estimates_match_through_mutation_and_time() {
    use ecds::sim::{CoreState, ExecutingTask, QueuedTask};

    let s = Scenario::small_for_tests(5);
    let mut cores = vec![CoreState::new(); s.cluster().total_cores()];
    cores[0].start(ExecutingTask {
        task: TaskId(0),
        type_id: TaskTypeId(1),
        pstate: PState::P0,
        start: 0.0,
        deadline: 9000.0,
    });
    cores[0].enqueue(QueuedTask {
        task: TaskId(1),
        type_id: TaskTypeId(2),
        pstate: PState::P3,
        deadline: 9000.0,
    });
    let task = Task {
        id: TaskId(2),
        type_id: TaskTypeId(0),
        arrival: 10.0,
        deadline: 10.0 + 4.0 * s.table().t_avg(),
        quantile: 0.5,
    };
    let cached = CandidateEvaluator::default();
    let uncached = CandidateEvaluator::uncached(ReductionPolicy::default());

    for step in 0..4 {
        let now = 10.0 + step as f64 * 15.0;
        let view = SystemView::new(s.cluster(), s.table(), &cores, now, 3, 60);
        assert!(
            candidates_bit_eq(
                &cached.evaluate_all(&view, &task),
                &uncached.evaluate_all(&view, &task)
            ),
            "diverged at t={now}"
        );
        // Second call on the same view: all-hit fast path, same answer.
        assert!(
            candidates_bit_eq(
                &cached.evaluate_all(&view, &task),
                &uncached.evaluate_all(&view, &task)
            ),
            "warm pass diverged at t={now}"
        );
    }

    // Mutate a core between views and re-check.
    cores[1].start(ExecutingTask {
        task: TaskId(3),
        type_id: TaskTypeId(0),
        pstate: PState::P2,
        start: 60.0,
        deadline: 9000.0,
    });
    let view = SystemView::new(s.cluster(), s.table(), &cores, 70.0, 4, 60);
    assert!(
        candidates_bit_eq(
            &cached.evaluate_all(&view, &task),
            &uncached.evaluate_all(&view, &task)
        ),
        "diverged after mutation"
    );
}
