//! End-to-end energy-accounting behaviour: budget monotonicity, cutoff
//! semantics, and the idle-policy ablation.

use ecds::prelude::*;

fn run(scenario: &Scenario, trial: u64) -> TrialResult {
    let trace = scenario.trace(trial);
    let mut mapper = build_scheduler(HeuristicKind::Mect, FilterVariant::None, scenario, trial);
    Simulation::new(scenario, &trace).run(mapper.as_mut())
}

#[test]
fn smaller_budgets_never_complete_more() {
    let base = Scenario::small_for_tests(42);
    let mut last_completed = usize::MAX;
    for factor in [2.0, 1.0, 0.5, 0.25, 0.1] {
        let result = run(&base.with_budget_factor(factor), 0);
        assert!(
            result.completed() <= last_completed,
            "budget factor {factor} completed more than a larger budget"
        );
        last_completed = result.completed();
    }
}

#[test]
fn smaller_budgets_exhaust_no_later() {
    let base = Scenario::small_for_tests(42);
    let mut last: f64 = f64::INFINITY;
    for factor in [2.0, 1.0, 0.5, 0.25] {
        let result = run(&base.with_budget_factor(factor), 0);
        let t = result.exhausted_at().unwrap_or(f64::INFINITY);
        assert!(t <= last + 1e-9, "budget factor {factor} exhausted later");
        last = t;
    }
}

#[test]
fn unconstrained_runs_never_cut_off() {
    let scenario = Scenario::small_for_tests(42).with_sim_config(SimConfig::unconstrained());
    let result = run(&scenario, 0);
    assert_eq!(result.exhausted_at(), None);
    assert_eq!(result.completed(), result.on_time_ignoring_energy());
}

#[test]
fn physical_energy_is_independent_of_the_budget() {
    // The budget caps *credited* work, not consumption: the same mapper on
    // the same trace burns the same energy whatever the budget, because
    // unfiltered MECT never consults the ledger.
    let base = Scenario::small_for_tests(42);
    let a = run(&base.with_budget_factor(0.5), 0);
    let b = run(&base.with_budget_factor(2.0), 0);
    assert!((a.total_energy() - b.total_energy()).abs() < 1e-6);
    assert_eq!(a.outcomes(), b.outcomes());
}

#[test]
fn idle_linger_burns_more_than_downshift() {
    let parked = Scenario::small_for_tests(42).with_sim_config(SimConfig::unconstrained());
    let mut linger_cfg = SimConfig::unconstrained();
    linger_cfg.idle_downshift = None;
    let linger = parked.with_sim_config(linger_cfg);
    let a = run(&parked, 0);
    let b = run(&linger, 0);
    // Identical task outcomes; only idle power differs. Unfiltered MECT
    // parks cores at P0, so lingering costs strictly more.
    assert_eq!(a.outcomes(), b.outcomes());
    assert!(b.total_energy() > a.total_energy());
}

#[test]
fn cutoff_discounts_late_completions_exactly() {
    let scenario = Scenario::small_for_tests(42).with_budget_factor(0.5);
    let result = run(&scenario, 0);
    let cutoff = result.exhausted_at().expect("starved budget must exhaust");
    let recount = result
        .outcomes()
        .iter()
        .filter(|o| matches!(o.completion, Some(c) if c <= o.deadline && c <= cutoff))
        .count();
    assert_eq!(result.completed(), recount);
}

#[test]
fn energy_filter_reduces_consumption() {
    let scenario = Scenario::small_for_tests(42);
    let trace = scenario.trace(0);
    let mut unfiltered = build_scheduler(HeuristicKind::Mect, FilterVariant::None, &scenario, 0);
    let mut filtered = build_scheduler(HeuristicKind::Mect, FilterVariant::Energy, &scenario, 0);
    let a = Simulation::new(&scenario, &trace).run(unfiltered.as_mut());
    let b = Simulation::new(&scenario, &trace).run(filtered.as_mut());
    assert!(
        b.total_energy() < a.total_energy(),
        "energy filter should reduce consumption ({} vs {})",
        b.total_energy(),
        a.total_energy()
    );
}
