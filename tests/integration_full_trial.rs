//! Full-stack trial invariants across the complete 4 × 4 heuristic/filter
//! grid.

use ecds::prelude::*;

fn grid_results() -> Vec<(HeuristicKind, FilterVariant, TrialResult)> {
    let scenario = Scenario::small_for_tests(42);
    let trace = scenario.trace(0);
    let mut out = Vec::new();
    for kind in HeuristicKind::ALL {
        for variant in FilterVariant::ALL {
            let mut mapper = build_scheduler(kind, variant, &scenario, 0);
            out.push((
                kind,
                variant,
                Simulation::new(&scenario, &trace).run(mapper.as_mut()),
            ));
        }
    }
    out
}

#[test]
fn conservation_missed_plus_completed_equals_window() {
    for (kind, variant, result) in grid_results() {
        assert_eq!(
            result.missed() + result.completed(),
            result.window(),
            "{kind}/{variant}"
        );
    }
}

#[test]
fn every_outcome_is_internally_consistent() {
    let scenario = Scenario::small_for_tests(42);
    let cores = scenario.cluster().total_cores();
    for (kind, variant, result) in grid_results() {
        for o in result.outcomes() {
            match (o.assignment, o.start, o.completion) {
                (Some((core, _)), Some(start), Some(completion)) => {
                    assert!(core < cores, "{kind}/{variant}: core out of range");
                    assert!(start >= o.arrival, "{kind}/{variant}: started early");
                    assert!(completion > start, "{kind}/{variant}: non-positive runtime");
                }
                (None, None, None) => {} // discarded
                (Some(_), None, None) => {
                    panic!("{kind}/{variant}: assigned task never started (engine drains queues)")
                }
                other => panic!("{kind}/{variant}: inconsistent outcome {other:?}"),
            }
        }
    }
}

#[test]
fn unfiltered_heuristics_never_discard() {
    for (kind, variant, result) in grid_results() {
        if variant == FilterVariant::None {
            assert_eq!(result.discarded(), 0, "{kind} discarded without filters");
        }
    }
}

#[test]
fn energy_is_positive_and_cutoff_within_makespan() {
    for (kind, variant, result) in grid_results() {
        assert!(result.total_energy() > 0.0, "{kind}/{variant}");
        if let Some(t) = result.exhausted_at() {
            assert!(
                t >= 0.0 && t <= result.makespan() + 1e-9,
                "{kind}/{variant}"
            );
        }
    }
}

#[test]
fn fifo_per_core_execution_order() {
    // Tasks assigned to the same core must start in assignment (arrival)
    // order — the run queues are FIFO.
    let scenario = Scenario::small_for_tests(42);
    let trace = scenario.trace(0);
    let mut mapper = build_scheduler(
        HeuristicKind::ShortestQueue,
        FilterVariant::None,
        &scenario,
        0,
    );
    let result = Simulation::new(&scenario, &trace).run(mapper.as_mut());
    let mut per_core: std::collections::BTreeMap<usize, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for o in result.outcomes() {
        if let (Some((core, _)), Some(start)) = (o.assignment, o.start) {
            per_core.entry(core).or_default().push((o.arrival, start));
        }
    }
    for (core, entries) in per_core {
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let starts: Vec<f64> = sorted.iter().map(|e| e.1).collect();
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "core {core} executed out of FIFO order"
        );
    }
}

#[test]
fn makespan_is_last_completion() {
    for (kind, variant, result) in grid_results() {
        let last = result
            .outcomes()
            .iter()
            .filter_map(|o| o.completion)
            .fold(0.0f64, f64::max);
        if last > 0.0 {
            assert_eq!(result.makespan(), last, "{kind}/{variant}");
        }
    }
}

#[test]
fn paper_scale_scenario_constructs() {
    // Construction only (a full paper trial is exercised by the bench
    // harness; keeping the test suite fast on small machines).
    let scenario = Scenario::paper(1353);
    assert_eq!(scenario.cluster().num_nodes(), 8);
    assert_eq!(scenario.workload().window, 1000);
    let trace = scenario.trace(0);
    assert_eq!(trace.len(), 1000);
    assert!(scenario.energy_budget().unwrap() > 0.0);
}
