//! End-to-end filter semantics across the whole stack.

use ecds::prelude::*;

fn scenario() -> Scenario {
    Scenario::small_for_tests(1353)
}

fn run_with(
    s: &Scenario,
    heuristic: Box<dyn Heuristic>,
    filters: Vec<Box<dyn Filter>>,
    budget: f64,
) -> TrialResult {
    let trace = s.trace(0);
    let mut sched = Scheduler::new(heuristic, filters, budget, ReductionPolicy::default());
    Simulation::new(s, &trace).run(&mut sched)
}

#[test]
fn exhausted_ledger_discards_everything() {
    let s = scenario();
    // An energy filter over an (effectively) empty ledger can never find a
    // feasible assignment: every task is discarded.
    let result = run_with(
        &s,
        Box::new(MinimumExpectedCompletionTime),
        vec![Box::new(EnergyFilter::paper())],
        1e-9,
    );
    assert_eq!(result.discarded(), result.window());
    assert_eq!(result.missed(), result.window());
}

#[test]
fn zero_robustness_threshold_is_a_no_op() {
    let s = scenario();
    let budget = s.energy_budget().unwrap();
    let plain = run_with(&s, Box::new(MinimumExpectedCompletionTime), vec![], budget);
    let filtered = run_with(
        &s,
        Box::new(MinimumExpectedCompletionTime),
        vec![Box::new(RobustnessFilter::with_threshold(0.0))],
        budget,
    );
    assert_eq!(plain.outcomes(), filtered.outcomes());
}

#[test]
fn filter_order_does_not_change_the_outcome() {
    // Both filters only *retain* candidates, so chains commute.
    let s = scenario();
    let budget = s.energy_budget().unwrap();
    let en_rob = run_with(
        &s,
        Box::new(LightestLoad),
        vec![
            Box::new(EnergyFilter::paper()),
            Box::new(RobustnessFilter::paper()),
        ],
        budget,
    );
    let rob_en = run_with(
        &s,
        Box::new(LightestLoad),
        vec![
            Box::new(RobustnessFilter::paper()),
            Box::new(EnergyFilter::paper()),
        ],
        budget,
    );
    assert_eq!(en_rob.outcomes(), rob_en.outcomes());
}

#[test]
fn robustness_filter_never_retains_below_threshold() {
    // A recording heuristic that asserts the invariant on every call.
    struct AssertingHeuristic {
        threshold: f64,
    }
    impl Heuristic for AssertingHeuristic {
        fn name(&self) -> &'static str {
            "asserting"
        }
        fn choose(
            &mut self,
            _task: &ecds::workload::Task,
            _view: &SystemView<'_>,
            candidates: &[EvaluatedCandidate],
        ) -> Option<usize> {
            for c in candidates {
                assert!(
                    c.est.rho >= self.threshold,
                    "filter leaked rho {} below threshold {}",
                    c.est.rho,
                    self.threshold
                );
            }
            // Behave like MECT afterwards.
            candidates
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.est.ect.total_cmp(&b.est.ect))
                .map(|(i, _)| i)
        }
    }
    let s = scenario();
    let budget = s.energy_budget().unwrap();
    let result = run_with(
        &s,
        Box::new(AssertingHeuristic { threshold: 0.5 }),
        vec![Box::new(RobustnessFilter::paper())],
        budget,
    );
    assert_eq!(result.window(), 60);
}

#[test]
fn energy_filter_never_retains_above_fair_share() {
    // The fair share changes per mapping event; verify through the ledger
    // invariant instead: with only the energy filter, the scheduler's
    // total EEC spend cannot exceed (max multiplier) × budget.
    let s = scenario();
    let budget = s.energy_budget().unwrap();
    let trace = s.trace(0);
    let mut sched = Scheduler::new(
        Box::new(MinimumExpectedCompletionTime),
        vec![Box::new(EnergyFilter::paper())],
        budget,
        ReductionPolicy::default(),
    );
    let _ = Simulation::new(&s, &trace).run(&mut sched);
    // The ledger may not go meaningfully negative: each assignment costs at
    // most 1.2 × remaining/T_left ≤ 1.2 × remaining, so remaining can
    // undershoot zero by at most a vanishing amount once it is small; a
    // crude but effective bound:
    assert!(
        sched.remaining_energy() > -0.2 * budget,
        "ledger overspent: {}",
        sched.remaining_energy()
    );
}

#[test]
fn priority_filter_composes_with_paper_filters() {
    use ecds::ext::{assign_priorities, PriorityEnergyFilter, PriorityReport};
    let s = scenario().with_budget_factor(0.5);
    let trace = s.trace(0);
    let priorities = assign_priorities(trace.len(), 0.25, s.seeds(), 0);
    let budget = s.energy_budget().unwrap();
    let mut sched = Scheduler::new(
        Box::new(LightestLoad),
        vec![
            Box::new(PriorityEnergyFilter::new(priorities.clone(), 1.5, 0.6)),
            Box::new(RobustnessFilter::paper()),
        ],
        budget,
        ReductionPolicy::default(),
    );
    let result = Simulation::new(&s, &trace).run(&mut sched);
    let report = PriorityReport::from_result(&result, &priorities);
    assert_eq!(report.high_total + report.low_total, trace.len());
    assert!(report.high_rate() >= report.low_rate());
}

#[test]
fn discarded_tasks_still_count_as_missed() {
    let s = scenario();
    let result = run_with(
        &s,
        Box::new(MinimumExpectedCompletionTime),
        vec![Box::new(EnergyFilter::paper())],
        1e-9,
    );
    assert_eq!(result.window(), result.missed());
    assert_eq!(result.completed(), 0);
}
